package stats

import (
	"fmt"
	"math"
	"sort"
)

// MannWhitney holds the result of a two-sided Mann–Whitney U test.
type MannWhitney struct {
	// U is the test statistic for the first sample.
	U float64
	// P is the two-sided p-value: the probability, under the null
	// hypothesis that both samples come from the same distribution, of a
	// U at least as extreme as observed.
	P float64
	// Exact reports whether P came from the exact U distribution (no
	// ties, small samples) or the normal approximation.
	Exact bool
}

// MannWhitneyU runs a two-sided Mann–Whitney U test on two independent
// samples — the standard distribution-free check benchstat applies to
// benchmark deltas, reimplemented here so the benchmark-regression gate
// needs no external tooling. With no ties and small samples the exact
// permutation distribution is used; otherwise the tie-corrected normal
// approximation.
func MannWhitneyU(x, y []float64) (MannWhitney, error) {
	n, m := len(x), len(y)
	if n == 0 || m == 0 {
		return MannWhitney{}, fmt.Errorf("stats: mann-whitney needs non-empty samples (%d, %d)", n, m)
	}
	for _, v := range append(append([]float64{}, x...), y...) {
		if math.IsNaN(v) {
			return MannWhitney{}, fmt.Errorf("stats: mann-whitney sample contains NaN")
		}
	}
	// Midrank the pooled sample.
	type obs struct {
		v     float64
		first bool
	}
	pool := make([]obs, 0, n+m)
	for _, v := range x {
		pool = append(pool, obs{v, true})
	}
	for _, v := range y {
		pool = append(pool, obs{v, false})
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i].v < pool[j].v })
	ranks := make([]float64, n+m)
	ties := false
	var tieTerm float64 // Σ (t³ - t) over tie groups, for the variance correction
	for i := 0; i < len(pool); {
		j := i
		for j < len(pool) && pool[j].v == pool[i].v {
			j++
		}
		r := float64(i+j+1) / 2 // midrank (1-based average of positions i..j-1)
		for k := i; k < j; k++ {
			ranks[k] = r
		}
		if t := j - i; t > 1 {
			ties = true
			tieTerm += float64(t*t*t - t)
		}
		i = j
	}
	var rx float64
	for i, o := range pool {
		if o.first {
			rx += ranks[i]
		}
	}
	u := rx - float64(n*(n+1))/2

	const exactLimit = 12
	if !ties && n <= exactLimit && m <= exactLimit {
		p := exactMannWhitneyP(n, m, u)
		return MannWhitney{U: u, P: p, Exact: true}, nil
	}
	// Normal approximation with tie correction and continuity correction.
	nm := float64(n * m)
	mean := nm / 2
	nTot := float64(n + m)
	variance := nm / 12 * (nTot + 1 - tieTerm/(nTot*(nTot-1)))
	if variance <= 0 {
		// All observations identical: no evidence of difference.
		return MannWhitney{U: u, P: 1, Exact: false}, nil
	}
	z := (math.Abs(u-mean) - 0.5) / math.Sqrt(variance)
	if z < 0 {
		z = 0
	}
	p := math.Erfc(z / math.Sqrt2) // two-sided
	if p > 1 {
		p = 1
	}
	return MannWhitney{U: u, P: p, Exact: false}, nil
}

// exactMannWhitneyP computes the exact two-sided p-value of U for sample
// sizes n, m by dynamic programming over the null permutation
// distribution: count(n, m, u) = count(n-1, m, u-m) + count(n, m-1, u).
func exactMannWhitneyP(n, m int, u float64) float64 {
	maxU := n * m
	// counts[i][j][k] built bottom-up in two rolling layers over i.
	prev := make([][]float64, m+1)
	cur := make([][]float64, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = make([]float64, maxU+1)
		cur[j] = make([]float64, maxU+1)
		prev[j][0] = 1 // n=0: only u=0 is reachable
	}
	for i := 1; i <= n; i++ {
		for j := 0; j <= m; j++ {
			for k := 0; k <= maxU; k++ {
				var c float64
				if k-j >= 0 {
					c += prev[j][k-j] // first sample contributes its rank over j others
				}
				if j > 0 {
					c += cur[j-1][k]
				}
				cur[j][k] = c
			}
		}
		prev, cur = cur, prev
	}
	dist := prev[m]
	var total float64
	for _, c := range dist {
		total += c
	}
	// Two-sided: double the smaller tail (U and its mirror n*m-U).
	lo := int(math.Floor(u))
	var lower float64
	for k := 0; k <= lo && k <= maxU; k++ {
		lower += dist[k]
	}
	hi := int(math.Ceil(u))
	var upper float64
	for k := hi; k <= maxU; k++ {
		upper += dist[k]
	}
	p := 2 * math.Min(lower, upper) / total
	if p > 1 {
		p = 1
	}
	return p
}
