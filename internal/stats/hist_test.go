package stats

import (
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 0.5, 1, 5.5, 9.99, -1, 10, 15} {
		h.Observe(x)
	}
	if h.Total() != 8 {
		t.Fatalf("Total = %d, want 8", h.Total())
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Errorf("OutOfRange = %d/%d, want 1/2", under, over)
	}
	c, lo, hi := h.Bucket(0)
	if c != 2 || lo != 0 || hi != 1 { // samples 0 and 0.5; 1.0 lands in bucket 1
		t.Errorf("Bucket(0) = %d [%v,%v), want 2 [0,1)", c, lo, hi)
	}
	c1, _, _ := h.Bucket(1)
	if c1 != 1 {
		t.Errorf("Bucket(1) = %d, want 1", c1)
	}
	if h.Buckets() != 10 {
		t.Errorf("Buckets = %d, want 10", h.Buckets())
	}
}

func TestHistogramInvalidConstruction(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero buckets should error")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("lo == hi should error")
	}
	if _, err := NewHistogram(10, 0, 3); err == nil {
		t.Error("lo > hi should error")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h, err := NewHistogram(0, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) + 0.5)
	}
	q, err := h.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if q < 45 || q > 55 {
		t.Errorf("median = %v, want ~50", q)
	}
	if _, err := h.Quantile(1.5); err == nil {
		t.Error("out-of-range quantile should error")
	}
	empty, _ := NewHistogram(0, 1, 4)
	if _, err := empty.Quantile(0.5); err == nil {
		t.Error("empty quantile should error")
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	check := func(samples []float64) bool {
		h, err := NewHistogram(-100, 100, 50)
		if err != nil {
			return false
		}
		for _, s := range samples {
			h.Observe(s)
		}
		if h.Total() == 0 {
			return true
		}
		prev := -1e18
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
			v, err := h.Quantile(q)
			if err != nil || v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogramStringNonEmpty(t *testing.T) {
	h, _ := NewHistogram(0, 1, 8)
	if got := h.String(); got != "(empty histogram)" {
		t.Errorf("empty String = %q", got)
	}
	h.Observe(0.5)
	if got := h.String(); got == "" || got == "(empty histogram)" {
		t.Errorf("non-empty String = %q", got)
	}
}
