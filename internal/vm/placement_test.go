package vm

import (
	"testing"
)

func hosts3(t *testing.T) []*Host {
	t.Helper()
	return []*Host{mkHost(t, "h1", 8), mkHost(t, "h2", 8), mkHost(t, "h3", 8)}
}

func TestFirstFit(t *testing.T) {
	hs := hosts3(t)
	placed, err := Place([]*VM{mkVM("a", 4), mkVM("b", 4), mkVM("c", 4)}, hs, FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	if placed["a"] != "h1" || placed["b"] != "h1" || placed["c"] != "h2" {
		t.Errorf("first-fit placement = %v", placed)
	}
}

func TestBestFitPacksTightest(t *testing.T) {
	hs := hosts3(t)
	// Pre-load h2 so it has the least remaining CPU.
	if err := hs[1].Place(mkVM("pre", 6)); err != nil {
		t.Fatal(err)
	}
	placed, err := Place([]*VM{mkVM("a", 2)}, hs, BestFit)
	if err != nil {
		t.Fatal(err)
	}
	if placed["a"] != "h2" {
		t.Errorf("best-fit chose %s, want h2", placed["a"])
	}
}

func TestPlaceErrors(t *testing.T) {
	if _, err := Place([]*VM{mkVM("a", 1)}, nil, FirstFit); err == nil {
		t.Error("no hosts should error")
	}
	hs := []*Host{mkHost(t, "h1", 2)}
	if _, err := Place([]*VM{mkVM("a", 4)}, hs, FirstFit); err == nil {
		t.Error("infeasible VM should error")
	}
	if _, err := Place([]*VM{mkVM("a", 1)}, hs, Policy(99)); err == nil {
		t.Error("unknown policy should error")
	}
}

func TestCorrelationAwarePairsOppositePhases(t *testing.T) {
	// Two hosts; day VM on each. A night VM should land with a day VM
	// (low combined peak) under the correlation-aware policy, but a new
	// day VM should land on whichever host minimizes the peak — not
	// simply pack.
	h1, h2 := mkHost(t, "h1", 8), mkHost(t, "h2", 8)
	day1 := &VM{Name: "day1", Size: Resources{CPU: 4}, CPUDemand: sineSeries(14)}
	if err := h1.Place(day1); err != nil {
		t.Fatal(err)
	}
	night := &VM{Name: "night", Size: Resources{CPU: 4}, CPUDemand: sineSeries(2)}
	day2 := &VM{Name: "day2", Size: Resources{CPU: 4}, CPUDemand: sineSeries(14)}

	if _, err := Place([]*VM{night, day2}, []*Host{h1, h2}, CorrelationAware); err != nil {
		t.Fatal(err)
	}
	// Whichever host received the night VM, the policy must never stack
	// day2 on top of day1 (that would double the peak).
	sameHost := func(a, b *VM) bool {
		for _, h := range []*Host{h1, h2} {
			has := map[string]bool{}
			for _, v := range h.VMs() {
				has[v.Name] = true
			}
			if has[a.Name] && has[b.Name] {
				return true
			}
		}
		return false
	}
	if sameHost(day1, day2) {
		t.Error("correlation-aware stacked two day-peaking VMs on one host")
	}
	// The correlation-aware layout's worst host peak beats the naive
	// (first-fit) layout's.
	worst := func(hs []*Host) float64 {
		var w float64
		for _, h := range hs {
			if p := h.CPUPeak(); p > w {
				w = p
			}
		}
		return w
	}
	smart := worst([]*Host{h1, h2})

	n1, n2 := mkHost(t, "n1", 8), mkHost(t, "n2", 8)
	d1 := &VM{Name: "day1", Size: Resources{CPU: 4}, CPUDemand: sineSeries(14)}
	if err := n1.Place(d1); err != nil {
		t.Fatal(err)
	}
	if _, err := Place([]*VM{
		{Name: "day2", Size: Resources{CPU: 4}, CPUDemand: sineSeries(14)},
		{Name: "night", Size: Resources{CPU: 4}, CPUDemand: sineSeries(2)},
	}, []*Host{n1, n2}, FirstFit); err != nil {
		t.Fatal(err)
	}
	naive := worst([]*Host{n1, n2})
	if smart >= naive {
		t.Errorf("correlation-aware worst peak %v not below naive %v", smart, naive)
	}
}

func TestInterferenceAwareSeparatesHeavyVMs(t *testing.T) {
	h1, h2 := mkHost(t, "h1", 16), mkHost(t, "h2", 16)
	heavy := func(name string) *VM {
		return &VM{Name: name, Size: Resources{CPU: 2, DiskIOPS: 400}}
	}
	placed, err := Place([]*VM{heavy("io1"), heavy("io2")}, []*Host{h1, h2}, InterferenceAware)
	if err != nil {
		t.Fatal(err)
	}
	if placed["io1"] == placed["io2"] {
		t.Errorf("interference-aware co-located two disk-heavy VMs: %v", placed)
	}
	if h1.DiskThroughputFactor() != 1 || h2.DiskThroughputFactor() != 1 {
		t.Error("separated heavy VMs should not degrade throughput")
	}
	// When no clean host remains, it degrades to packing rather than
	// failing.
	placed2, err := Place([]*VM{heavy("io3")}, []*Host{h1, h2}, InterferenceAware)
	if err != nil {
		t.Fatal(err)
	}
	if placed2["io3"] == "" {
		t.Error("io3 not placed")
	}
}

func TestConsolidatePacksAndFreesHosts(t *testing.T) {
	hs := hosts3(t)
	// Scatter small VMs across all three hosts.
	for i, h := range hs {
		names := []string{"a", "b", "c"}
		if err := h.Place(mkVM(names[i]+"1", 2)); err != nil {
			t.Fatal(err)
		}
		if err := h.Place(mkVM(names[i]+"2", 1)); err != nil {
			t.Fatal(err)
		}
	}
	migs, err := Consolidate(hs, DefaultMigrationModel())
	if err != nil {
		t.Fatal(err)
	}
	empty := EmptyHosts(hs)
	if len(empty) == 0 {
		t.Error("consolidation freed no hosts")
	}
	// Every VM still placed exactly once.
	total := 0
	for _, h := range hs {
		total += len(h.VMs())
	}
	if total != 6 {
		t.Errorf("VM count after consolidation = %d, want 6", total)
	}
	if len(migs) == 0 {
		t.Error("no migrations recorded despite repacking")
	}
	for _, m := range migs {
		if m.Duration <= 0 {
			t.Errorf("migration %v has non-positive duration", m)
		}
		if m.From == m.To {
			t.Errorf("migration %v moves nowhere", m)
		}
	}
}

func TestConsolidateRespectsCapacity(t *testing.T) {
	hs := []*Host{mkHost(t, "h1", 4), mkHost(t, "h2", 4)}
	if err := hs[0].Place(mkVM("a", 3)); err != nil {
		t.Fatal(err)
	}
	if err := hs[1].Place(mkVM("b", 3)); err != nil {
		t.Fatal(err)
	}
	// Cannot fit both on one host; consolidation must keep both placed
	// without violating capacity.
	if _, err := Consolidate(hs, DefaultMigrationModel()); err != nil {
		t.Fatal(err)
	}
	for _, h := range hs {
		if h.Used().CPU > h.Capacity.CPU {
			t.Errorf("host %s over capacity after consolidation", h.Name)
		}
	}
	total := 0
	for _, h := range hs {
		total += len(h.VMs())
	}
	if total != 2 {
		t.Errorf("VM count = %d, want 2", total)
	}
}

func TestPolicyStrings(t *testing.T) {
	for p, want := range map[Policy]string{
		FirstFit: "first-fit", BestFit: "best-fit",
		CorrelationAware: "correlation-aware", InterferenceAware: "interference-aware",
		Policy(42): "policy(42)",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
	}
}
