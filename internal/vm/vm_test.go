package vm

import (
	"math"
	"testing"
	"time"

	"repro/internal/trace"
)

func mkHost(t *testing.T, name string, cpu float64) *Host {
	t.Helper()
	h, err := NewHost(name, Resources{CPU: cpu, MemGB: cpu * 4, DiskIOPS: 1000})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func mkVM(name string, cpu float64) *VM {
	return &VM{Name: name, Size: Resources{CPU: cpu, MemGB: cpu * 2, DiskIOPS: 50}}
}

// sineSeries builds a 24h utilization series peaking at the given hour.
func sineSeries(peakHour float64) *trace.Series {
	vals := make([]float64, 24*60)
	for i := range vals {
		h := float64(i) / 60
		vals[i] = 0.5 + 0.5*math.Cos(2*math.Pi*(h-peakHour)/24)
	}
	return &trace.Series{Step: time.Minute, Values: vals}
}

func TestResourcesArithmetic(t *testing.T) {
	a := Resources{CPU: 1, MemGB: 2, DiskIOPS: 3}
	b := Resources{CPU: 10, MemGB: 20, DiskIOPS: 30}
	sum := a.Add(b)
	if sum.CPU != 11 || sum.MemGB != 22 || sum.DiskIOPS != 33 {
		t.Errorf("Add = %+v", sum)
	}
	if !a.Fits(b) {
		t.Error("small should fit in large")
	}
	if b.Fits(a) {
		t.Error("large should not fit in small")
	}
	if err := (Resources{CPU: -1}).Validate(); err == nil {
		t.Error("negative resources should error")
	}
}

func TestVMValidateAndDemand(t *testing.T) {
	v := mkVM("a", 2)
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	if (&VM{Name: "", Size: Resources{CPU: 1}}).Validate() == nil {
		t.Error("unnamed VM should error")
	}
	if (&VM{Name: "x", Size: Resources{CPU: 0}}).Validate() == nil {
		t.Error("zero-CPU VM should error")
	}
	// Static demand equals the reservation.
	if v.CPUAt(time.Hour) != 2 {
		t.Errorf("static demand = %v, want 2", v.CPUAt(time.Hour))
	}
	// Traced demand follows the series, clamped.
	v.CPUDemand = &trace.Series{Step: time.Hour, Values: []float64{0.5, 2.0, -1.0}}
	if got := v.CPUAt(0); got != 1 {
		t.Errorf("traced demand = %v, want 1 (0.5 × 2 cores)", got)
	}
	if got := v.CPUAt(time.Hour); got != 2 {
		t.Errorf("over-demand = %v, want clamp at reservation 2", got)
	}
	if got := v.CPUAt(2 * time.Hour); got != 0 {
		t.Errorf("negative demand = %v, want clamp at 0", got)
	}
}

func TestHostPlaceRemove(t *testing.T) {
	h := mkHost(t, "h1", 8)
	if err := h.Place(mkVM("a", 4)); err != nil {
		t.Fatal(err)
	}
	if err := h.Place(mkVM("a", 1)); err == nil {
		t.Error("duplicate name should error")
	}
	if err := h.Place(mkVM("b", 5)); err == nil {
		t.Error("over-capacity placement should error")
	}
	if err := h.Place(mkVM("b", 4)); err != nil {
		t.Fatal(err)
	}
	if got := h.Used().CPU; got != 8 {
		t.Errorf("used CPU = %v, want 8", got)
	}
	v, err := h.Remove("a")
	if err != nil || v.Name != "a" {
		t.Fatalf("Remove = %v, %v", v, err)
	}
	if _, err := h.Remove("a"); err == nil {
		t.Error("removing absent VM should error")
	}
	if got := h.Used().CPU; got != 4 {
		t.Errorf("used CPU after removal = %v, want 4", got)
	}
}

func TestNewHostValidation(t *testing.T) {
	if _, err := NewHost("", Resources{CPU: 1}); err == nil {
		t.Error("unnamed host should error")
	}
	if _, err := NewHost("h", Resources{CPU: 0}); err == nil {
		t.Error("zero-CPU host should error")
	}
	if _, err := NewHost("h", Resources{CPU: 1, MemGB: -1}); err == nil {
		t.Error("negative memory should error")
	}
}

func TestAntiCorrelatedVMsPeakBelowSumOfPeaks(t *testing.T) {
	// The §5.2 argument: day-peaking + night-peaking VMs on one host
	// produce a combined peak far below the sum of individual peaks.
	h := mkHost(t, "h1", 8)
	day := &VM{Name: "day", Size: Resources{CPU: 4}, CPUDemand: sineSeries(14)}
	night := &VM{Name: "night", Size: Resources{CPU: 4}, CPUDemand: sineSeries(2)}
	if err := h.Place(day); err != nil {
		t.Fatal(err)
	}
	if err := h.Place(night); err != nil {
		t.Fatal(err)
	}
	peak := h.CPUPeak()
	sumOfPeaks := 8.0 // each peaks at its full 4 cores
	if peak >= 0.8*sumOfPeaks {
		t.Errorf("anti-correlated combined peak = %v, want well below %v", peak, sumOfPeaks)
	}
	// Correlated VMs, by contrast, peak together.
	h2 := mkHost(t, "h2", 8)
	a := &VM{Name: "a", Size: Resources{CPU: 4}, CPUDemand: sineSeries(14)}
	b := &VM{Name: "b", Size: Resources{CPU: 4}, CPUDemand: sineSeries(14)}
	if err := h2.Place(a); err != nil {
		t.Fatal(err)
	}
	if err := h2.Place(b); err != nil {
		t.Fatal(err)
	}
	if h2.CPUPeak() < 0.95*sumOfPeaks {
		t.Errorf("correlated combined peak = %v, want ~%v", h2.CPUPeak(), sumOfPeaks)
	}
}

func TestCPUPeakStaticVMs(t *testing.T) {
	h := mkHost(t, "h", 8)
	if err := h.Place(mkVM("a", 3)); err != nil {
		t.Fatal(err)
	}
	if got := h.CPUPeak(); got != 3 {
		t.Errorf("static peak = %v, want 3", got)
	}
}

func TestDiskInterferenceNonAdditive(t *testing.T) {
	h, err := NewHost("h", Resources{CPU: 16, MemGB: 64, DiskIOPS: 1300})
	if err != nil {
		t.Fatal(err)
	}
	// One IO-heavy VM: full throughput.
	heavy1 := &VM{Name: "io1", Size: Resources{CPU: 2, DiskIOPS: 400}}
	if err := h.Place(heavy1); err != nil {
		t.Fatal(err)
	}
	if got := h.DiskThroughputFactor(); got != 1 {
		t.Errorf("single heavy VM factor = %v, want 1", got)
	}
	// A light VM does not contend.
	if err := h.Place(&VM{Name: "light", Size: Resources{CPU: 1, DiskIOPS: 20}}); err != nil {
		t.Fatal(err)
	}
	if got := h.DiskThroughputFactor(); got != 1 {
		t.Errorf("heavy+light factor = %v, want 1", got)
	}
	// A second heavy VM degrades beyond simple sharing.
	heavy2 := &VM{Name: "io2", Size: Resources{CPU: 2, DiskIOPS: 400}}
	if err := h.Place(heavy2); err != nil {
		t.Fatal(err)
	}
	got := h.DiskThroughputFactor()
	if got >= 1 {
		t.Errorf("two heavy VMs factor = %v, want < 1", got)
	}
	if math.Abs(got-0.75) > 1e-12 {
		t.Errorf("factor = %v, want 0.75 with default penalty", got)
	}
	if eff := h.EffectiveDiskIOPS(); math.Abs(eff-975) > 1e-9 {
		t.Errorf("effective IOPS = %v, want 975", eff)
	}
	// Third heavy VM compounds (threshold is 0.30 × 1300 = 390 IOPS).
	if err := h.Place(&VM{Name: "io3", Size: Resources{CPU: 2, DiskIOPS: 400}}); err != nil {
		t.Fatal(err)
	}
	if h.DiskThroughputFactor() >= got {
		t.Error("third heavy VM did not compound degradation")
	}
}

func TestMigrationModel(t *testing.T) {
	m := DefaultMigrationModel()
	v := &VM{Name: "a", Size: Resources{CPU: 2, MemGB: 8}}
	d, err := m.Duration(v)
	if err != nil {
		t.Fatal(err)
	}
	// 8 GB at 1 GB/s inflated by 1/(1-0.2) = 10 s, plus downtime.
	want := 10*time.Second + m.Downtime
	if d != want {
		t.Errorf("migration duration = %v, want %v", d, want)
	}
	bad := m
	bad.BandwidthGBps = 0
	if _, err := bad.Duration(v); err == nil {
		t.Error("zero bandwidth should error")
	}
	bad = m
	bad.DirtyFactor = 1
	if _, err := bad.Duration(v); err == nil {
		t.Error("dirty factor 1 should error")
	}
}
