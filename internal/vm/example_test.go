package vm_test

import (
	"fmt"

	"repro/internal/vm"
)

// Example shows the §4.4 placement story: interference-aware placement
// keeps disk-heavy VMs apart, preserving throughput that naive packing
// destroys.
func Example() {
	mkHosts := func() []*vm.Host {
		var hs []*vm.Host
		for i := 0; i < 2; i++ {
			h, err := vm.NewHost(fmt.Sprintf("h%d", i),
				vm.Resources{CPU: 16, MemGB: 64, DiskIOPS: 1000})
			if err != nil {
				panic(err)
			}
			hs = append(hs, h)
		}
		return hs
	}
	mkVMs := func() []*vm.VM {
		return []*vm.VM{
			{Name: "db1", Size: vm.Resources{CPU: 2, MemGB: 8, DiskIOPS: 400}},
			{Name: "db2", Size: vm.Resources{CPU: 2, MemGB: 8, DiskIOPS: 400}},
		}
	}
	effective := func(hs []*vm.Host) float64 {
		var total float64
		for _, h := range hs {
			if len(h.VMs()) > 0 {
				total += h.EffectiveDiskIOPS()
			}
		}
		return total
	}

	packed := mkHosts()
	if _, err := vm.Place(mkVMs(), packed, vm.BestFit); err != nil {
		panic(err)
	}
	spread := mkHosts()
	if _, err := vm.Place(mkVMs(), spread, vm.InterferenceAware); err != nil {
		panic(err)
	}
	fmt.Printf("best-fit packing:      %.0f effective IOPS\n", effective(packed))
	fmt.Printf("interference-aware:    %.0f effective IOPS\n", effective(spread))
	// Output:
	// best-fit packing:      750 effective IOPS
	// interference-aware:    2000 effective IOPS
}
