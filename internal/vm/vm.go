// Package vm models the virtualization substrate of §4.4: VMs with
// multi-resource sizes and time-varying CPU demand, hosts with capacities,
// live migration with transfer-time cost, and placement policies —
// including the two phenomena the paper singles out:
//
//   - non-additive interference: "due to disk contention, putting two disk
//     IO intensive applications on the same host machine may cause
//     significant throughput degradation";
//   - correlation-aware co-location: "two processes, or VMs, from
//     different applications are unlikely to generate power spikes at the
//     same time. This will reduce the probability of power capping" (§5.2).
package vm

import (
	"fmt"
	"math"
	"time"

	"repro/internal/trace"
)

// Resources is a multi-dimensional resource vector.
type Resources struct {
	// CPU is in cores.
	CPU float64
	// MemGB is in gigabytes.
	MemGB float64
	// DiskIOPS is the sustained IO operations per second.
	DiskIOPS float64
}

// Add returns r + o.
func (r Resources) Add(o Resources) Resources {
	return Resources{CPU: r.CPU + o.CPU, MemGB: r.MemGB + o.MemGB, DiskIOPS: r.DiskIOPS + o.DiskIOPS}
}

// Fits reports whether r fits within capacity c.
func (r Resources) Fits(c Resources) bool {
	return r.CPU <= c.CPU && r.MemGB <= c.MemGB && r.DiskIOPS <= c.DiskIOPS
}

// Validate checks non-negativity.
func (r Resources) Validate() error {
	if r.CPU < 0 || r.MemGB < 0 || r.DiskIOPS < 0 {
		return fmt.Errorf("vm: negative resource vector %+v", r)
	}
	return nil
}

// VM is one virtual machine.
type VM struct {
	// Name identifies the VM.
	Name string
	// Size is the reserved resource vector.
	Size Resources
	// CPUDemand is the VM's CPU utilization over time as a fraction of
	// Size.CPU (nil means constantly at its reservation).
	CPUDemand *trace.Series
}

// Validate checks the VM definition.
func (v *VM) Validate() error {
	if v.Name == "" {
		return fmt.Errorf("vm: VM needs a name")
	}
	if err := v.Size.Validate(); err != nil {
		return err
	}
	if v.Size.CPU <= 0 {
		return fmt.Errorf("vm: %s needs positive CPU size", v.Name)
	}
	return nil
}

// CPUAt returns the VM's absolute CPU demand (cores) at time t.
func (v *VM) CPUAt(t time.Duration) float64 {
	if v.CPUDemand == nil {
		return v.Size.CPU
	}
	u := v.CPUDemand.At(t)
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	return u * v.Size.CPU
}

// Host is a physical machine hosting VMs.
type Host struct {
	// Name identifies the host.
	Name string
	// Capacity is the host resource vector.
	Capacity Resources
	// DiskContentionPenalty is the extra throughput loss per additional
	// disk-heavy VM sharing the host (seek amplification): with k heavy
	// VMs, effective IO capacity is Capacity.DiskIOPS·(1−p)^(k−1).
	DiskContentionPenalty float64
	// IOHeavyThreshold classifies a VM as disk-heavy when its DiskIOPS
	// reservation exceeds this fraction of host IO capacity.
	IOHeavyThreshold float64

	vms []*VM
}

// NewHost builds a host.
func NewHost(name string, capacity Resources) (*Host, error) {
	if name == "" {
		return nil, fmt.Errorf("vm: host needs a name")
	}
	if err := capacity.Validate(); err != nil {
		return nil, err
	}
	if capacity.CPU <= 0 {
		return nil, fmt.Errorf("vm: host %s needs positive CPU capacity", name)
	}
	return &Host{
		Name:                  name,
		Capacity:              capacity,
		DiskContentionPenalty: 0.25,
		IOHeavyThreshold:      0.30,
	}, nil
}

// VMs returns the hosted VMs (shared slice: do not mutate).
func (h *Host) VMs() []*VM { return h.vms }

// Used sums the reservations of hosted VMs.
func (h *Host) Used() Resources {
	var total Resources
	for _, v := range h.vms {
		total = total.Add(v.Size)
	}
	return total
}

// CanFit reports whether the VM's reservation fits in the remaining
// capacity.
func (h *Host) CanFit(v *VM) bool {
	return h.Used().Add(v.Size).Fits(h.Capacity)
}

// Place adds a VM; it errors when the reservation does not fit or the
// name collides.
func (h *Host) Place(v *VM) error {
	if err := v.Validate(); err != nil {
		return err
	}
	for _, existing := range h.vms {
		if existing.Name == v.Name {
			return fmt.Errorf("vm: %s already on host %s", v.Name, h.Name)
		}
	}
	if !h.CanFit(v) {
		return fmt.Errorf("vm: %s does not fit on host %s (used %+v, capacity %+v)",
			v.Name, h.Name, h.Used(), h.Capacity)
	}
	h.vms = append(h.vms, v)
	return nil
}

// Remove detaches a VM by name and returns it.
func (h *Host) Remove(name string) (*VM, error) {
	for i, v := range h.vms {
		if v.Name == name {
			h.vms = append(h.vms[:i], h.vms[i+1:]...)
			return v, nil
		}
	}
	return nil, fmt.Errorf("vm: %s not on host %s", name, h.Name)
}

// CPUDemandAt returns the host's total CPU demand (cores) at time t.
func (h *Host) CPUDemandAt(t time.Duration) float64 {
	var total float64
	for _, v := range h.vms {
		total += v.CPUAt(t)
	}
	return total
}

// CPUPeak scans the hosted VMs' demand series and returns the peak of the
// *sum* (which, for anti-correlated VMs, is far below the sum of peaks).
// The horizon and step are taken from the longest series; hosts with only
// static VMs return the sum of reservations.
func (h *Host) CPUPeak() float64 {
	var step time.Duration
	var n int
	for _, v := range h.vms {
		if v.CPUDemand != nil && v.CPUDemand.Len() > 0 {
			if n == 0 || v.CPUDemand.Len() > n {
				n = v.CPUDemand.Len()
				step = v.CPUDemand.Step
			}
		}
	}
	if n == 0 {
		return h.Used().CPU
	}
	var peak float64
	for i := 0; i < n; i++ {
		t := time.Duration(i) * step
		if d := h.CPUDemandAt(t); d > peak {
			peak = d
		}
	}
	return peak
}

// CheckInvariants verifies the host's physical constraints: placed
// reservations fit inside capacity and the contention factor is a valid
// fraction. It satisfies the invariant layer's Checkable interface (the
// time argument is unused because hosts carry no clock of their own).
func (h *Host) CheckInvariants(_ time.Duration) error {
	used := h.Used()
	if !used.Fits(h.Capacity) {
		return fmt.Errorf("vm: host %s overcommitted: used %+v exceeds capacity %+v",
			h.Name, used, h.Capacity)
	}
	if used.CPU < 0 || used.MemGB < 0 || used.DiskIOPS < 0 {
		return fmt.Errorf("vm: host %s has negative usage %+v", h.Name, used)
	}
	if f := h.DiskThroughputFactor(); f <= 0 || f > 1 || math.IsNaN(f) {
		return fmt.Errorf("vm: host %s disk throughput factor %v out of (0,1]", h.Name, f)
	}
	return nil
}

// ioHeavy reports whether a VM counts as disk-IO-intensive on this host.
func (h *Host) ioHeavy(v *VM) bool {
	if h.Capacity.DiskIOPS <= 0 {
		return false
	}
	return v.Size.DiskIOPS >= h.IOHeavyThreshold*h.Capacity.DiskIOPS
}

// DiskThroughputFactor returns the effective disk throughput of the host
// as a fraction of nominal, capturing non-additive contention: each
// disk-heavy VM beyond the first multiplies capacity by
// (1 − DiskContentionPenalty).
func (h *Host) DiskThroughputFactor() float64 {
	heavy := 0
	for _, v := range h.vms {
		if h.ioHeavy(v) {
			heavy++
		}
	}
	if heavy <= 1 {
		return 1
	}
	return math.Pow(1-h.DiskContentionPenalty, float64(heavy-1))
}

// EffectiveDiskIOPS is the host's contended IO capacity.
func (h *Host) EffectiveDiskIOPS() float64 {
	return h.Capacity.DiskIOPS * h.DiskThroughputFactor()
}
