package vm

import (
	"fmt"
	"sort"
	"time"
)

// Policy selects a placement strategy.
type Policy int

// Placement policies.
const (
	// FirstFit places each VM on the first host with room.
	FirstFit Policy = iota + 1
	// BestFit places each VM on the feasible host with the least
	// remaining CPU (tightest packing → most hosts freed).
	BestFit
	// CorrelationAware places each VM on the feasible host that
	// minimizes the resulting *peak* of summed CPU demand (§5.2),
	// preferring hosts whose existing VMs peak at other times — the
	// paper's cyber-physical co-design suggestion for reducing
	// power-capping probability.
	CorrelationAware
	// InterferenceAware behaves like BestFit but refuses to co-locate a
	// second disk-heavy VM on a host that already has one while any
	// alternative exists (§4.4).
	InterferenceAware
)

// String renders the policy.
func (p Policy) String() string {
	switch p {
	case FirstFit:
		return "first-fit"
	case BestFit:
		return "best-fit"
	case CorrelationAware:
		return "correlation-aware"
	case InterferenceAware:
		return "interference-aware"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Place assigns every VM to a host under the given policy, mutating the
// hosts. It returns the mapping VM name → host name. Placement is greedy
// in the order given; an error unwinds nothing (callers own transactional
// behaviour), so validate feasibility with total capacity beforehand when
// that matters.
func Place(vms []*VM, hosts []*Host, policy Policy) (map[string]string, error) {
	if len(hosts) == 0 {
		return nil, fmt.Errorf("vm: no hosts to place on")
	}
	out := make(map[string]string, len(vms))
	for _, v := range vms {
		h, err := choose(v, hosts, policy)
		if err != nil {
			return out, fmt.Errorf("vm: placing %s: %w", v.Name, err)
		}
		if err := h.Place(v); err != nil {
			return out, err
		}
		out[v.Name] = h.Name
	}
	return out, nil
}

func choose(v *VM, hosts []*Host, policy Policy) (*Host, error) {
	feasible := make([]*Host, 0, len(hosts))
	for _, h := range hosts {
		if h.CanFit(v) {
			feasible = append(feasible, h)
		}
	}
	if len(feasible) == 0 {
		return nil, fmt.Errorf("no feasible host")
	}
	switch policy {
	case FirstFit:
		return feasible[0], nil
	case BestFit:
		best := feasible[0]
		bestLeft := best.Capacity.CPU - best.Used().CPU
		for _, h := range feasible[1:] {
			left := h.Capacity.CPU - h.Used().CPU
			if left < bestLeft {
				best, bestLeft = h, left
			}
		}
		return best, nil
	case CorrelationAware:
		best := feasible[0]
		bestPeak := peakWith(best, v)
		for _, h := range feasible[1:] {
			if p := peakWith(h, v); p < bestPeak {
				best, bestPeak = h, p
			}
		}
		return best, nil
	case InterferenceAware:
		// Prefer hosts where adding v keeps at most one disk-heavy VM.
		var clean []*Host
		for _, h := range feasible {
			heavy := 0
			if h.ioHeavy(v) {
				heavy++
			}
			for _, existing := range h.VMs() {
				if h.ioHeavy(existing) {
					heavy++
				}
			}
			if heavy <= 1 {
				clean = append(clean, h)
			}
		}
		pool := clean
		if len(pool) == 0 {
			pool = feasible // degrade to best-fit rather than fail
		}
		best := pool[0]
		bestLeft := best.Capacity.CPU - best.Used().CPU
		for _, h := range pool[1:] {
			left := h.Capacity.CPU - h.Used().CPU
			if left < bestLeft {
				best, bestLeft = h, left
			}
		}
		return best, nil
	default:
		return nil, fmt.Errorf("unknown policy %v", policy)
	}
}

// peakWith estimates the host's CPU-demand peak if v were added.
func peakWith(h *Host, v *VM) float64 {
	h.vms = append(h.vms, v)
	peak := h.CPUPeak()
	h.vms = h.vms[:len(h.vms)-1]
	return peak
}

// Migration is one planned VM move.
type Migration struct {
	VM, From, To string
	// Duration is the expected live-migration time.
	Duration time.Duration
}

// MigrationModel converts VM memory footprint into live-migration time:
// pre-copy transfers MemGB at BandwidthGBps while the guest dirties pages
// at DirtyFactor of the transfer rate, so the effective time inflates by
// 1/(1−DirtyFactor), plus a fixed stop-and-copy Downtime.
type MigrationModel struct {
	BandwidthGBps float64
	DirtyFactor   float64
	Downtime      time.Duration
}

// DefaultMigrationModel is 10 GbE with a moderate dirty rate.
func DefaultMigrationModel() MigrationModel {
	return MigrationModel{BandwidthGBps: 1.0, DirtyFactor: 0.2, Downtime: 300 * time.Millisecond}
}

// Duration estimates the live-migration time for a VM.
func (m MigrationModel) Duration(v *VM) (time.Duration, error) {
	if m.BandwidthGBps <= 0 {
		return 0, fmt.Errorf("vm: migration bandwidth %v must be positive", m.BandwidthGBps)
	}
	if m.DirtyFactor < 0 || m.DirtyFactor >= 1 {
		return 0, fmt.Errorf("vm: dirty factor %v out of [0,1)", m.DirtyFactor)
	}
	secs := v.Size.MemGB / m.BandwidthGBps / (1 - m.DirtyFactor)
	return time.Duration(secs*float64(time.Second)) + m.Downtime, nil
}

// Consolidate plans migrations that pack all VMs onto as few hosts as
// possible (best-fit-decreasing by CPU reservation), enabling the rest to
// be powered off (§4.4: "dynamically migrate VMs … to improve resource
// utilizations on active servers. And through doing so, shut down
// inactive servers"). Hosts are mutated to the post-plan state; the
// returned migrations describe the moves.
func Consolidate(hosts []*Host, model MigrationModel) ([]Migration, error) {
	type placed struct {
		v    *VM
		from *Host
	}
	var all []placed
	for _, h := range hosts {
		for _, v := range h.VMs() {
			all = append(all, placed{v: v, from: h})
		}
	}
	// Detach everything, then re-place best-fit-decreasing.
	for _, h := range hosts {
		h.vms = nil
	}
	sort.SliceStable(all, func(i, j int) bool {
		return all[i].v.Size.CPU > all[j].v.Size.CPU
	})
	var migrations []Migration
	for _, p := range all {
		target, err := choose(p.v, hosts, BestFit)
		if err != nil {
			// Out of room (should not happen: we only re-place what
			// fitted before). Restore to origin.
			if restoreErr := p.from.Place(p.v); restoreErr != nil {
				return migrations, fmt.Errorf("vm: consolidation failed and could not restore %s: %w", p.v.Name, restoreErr)
			}
			continue
		}
		if err := target.Place(p.v); err != nil {
			return migrations, err
		}
		if target != p.from {
			d, err := model.Duration(p.v)
			if err != nil {
				return migrations, err
			}
			migrations = append(migrations, Migration{
				VM: p.v.Name, From: p.from.Name, To: target.Name, Duration: d,
			})
		}
	}
	return migrations, nil
}

// EmptyHosts returns the hosts with no VMs (candidates to power off).
func EmptyHosts(hosts []*Host) []*Host {
	var out []*Host
	for _, h := range hosts {
		if len(h.VMs()) == 0 {
			out = append(out, h)
		}
	}
	return out
}
