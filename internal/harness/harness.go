// Package harness runs (experiment × seed-replication) jobs over a worker
// pool and aggregates the replications into per-experiment summaries. The
// paper's MRM layer (Figure 4) makes claims about stochastic workloads;
// one run per claim is anecdote, so the harness fans every experiment out
// over several seeds and reports mean / min / max / stddev per metric.
//
// Determinism is preserved bit-for-bit: each job constructs its own
// exp.Env (and therefore its own engines) from its seed, and no state is
// shared between jobs, so a job's result is a pure function of
// (experiment id, seed) regardless of worker count or scheduling order.
package harness

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"repro/internal/exp"
	"repro/internal/stats"
)

// Config describes one harness invocation.
type Config struct {
	// IDs are the experiments to run, in the order given. Empty means
	// every registered experiment in sorted-id order.
	IDs []string
	// BaseSeed is the first replication's seed; replication r runs with
	// seed BaseSeed+r, so -reps 1 reproduces the single-seed run exactly.
	BaseSeed int64
	// Reps is the number of seed replications per experiment (min 1).
	Reps int
	// Parallel is the worker count (min 1; 0 means GOMAXPROCS).
	Parallel int
	// DisarmInvariants turns off the runtime physical-law checker that
	// every job otherwise runs with (see internal/invariant). The zero
	// value keeps invariants armed.
	DisarmInvariants bool
	// Scale multiplies the facility size of the fig4-family experiments
	// (see exp.Env.Scale). 0 or 1 is the paper's scale.
	Scale int
	// Workers is each job's intra-run execution width for the sharded
	// per-tick loops (see exp.Env.Workers): 0 means GOMAXPROCS, 1 forces
	// inline execution. Orthogonal to Parallel (jobs run concurrently
	// either way) and irrelevant to results, which depend only on
	// (id, seed, scale).
	Workers int
	// Sites sets the federated-site count of the geo-family experiments
	// (see exp.Env.Sites): 0 means each experiment's default of 4.
	// Unlike Workers this changes the scenario, so golden comparisons
	// hold only at the default.
	Sites int
}

// normalize applies the documented defaults.
func (c Config) normalize() Config {
	if len(c.IDs) == 0 {
		c.IDs = exp.IDs()
	}
	if c.Reps < 1 {
		c.Reps = 1
	}
	if c.Parallel < 1 {
		c.Parallel = runtime.GOMAXPROCS(0)
	}
	return c
}

// JobResult is the instrumented outcome of one (experiment, seed) job.
type JobResult struct {
	ID   string `json:"id"`
	Seed int64  `json:"seed"`
	Rep  int    `json:"rep"`
	// Err is the job's error, empty on success.
	Err string `json:"err,omitempty"`
	// WallSeconds is the real time the job took.
	WallSeconds float64 `json:"wall_seconds"`
	// Events is the number of kernel events fired across every engine
	// the job constructed.
	Events uint64 `json:"events"`
	// EventsPerSec is Events / WallSeconds.
	EventsPerSec float64 `json:"events_per_sec"`
	// PeakPending is the largest event-queue depth any engine reached.
	PeakPending int `json:"peak_pending"`
	// Engines is how many engines the job constructed.
	Engines int `json:"engines"`

	// Result is the experiment's typed outcome (nil on error). It is
	// excluded from the JSON sidecar; Report below carries the text.
	Result exp.Result `json:"-"`
	// Report is the experiment's human-readable report.
	Report string `json:"-"`
}

// Summary aggregates one experiment's replications.
type Summary struct {
	ID   string      `json:"id"`
	Reps []JobResult `json:"reps"`
	// Wall, Events, Throughput and PeakPending summarize the successful
	// replications (seconds, events, events/sec, queue depth).
	Wall        stats.Desc `json:"wall_seconds"`
	Events      stats.Desc `json:"events"`
	Throughput  stats.Desc `json:"events_per_sec"`
	PeakPending stats.Desc `json:"peak_pending"`
	// Errors collects per-replication failures, if any.
	Errors []string `json:"errors,omitempty"`
}

// Run executes cfg's (experiment × replication) jobs over a worker pool
// and returns one Summary per experiment, in cfg.IDs order. Job errors do
// not abort other jobs; they are recorded in the summaries and joined
// into the returned error.
func Run(cfg Config) ([]Summary, error) {
	cfg = cfg.normalize()
	type job struct {
		id   string
		seed int64
		rep  int
	}
	jobs := make([]job, 0, len(cfg.IDs)*cfg.Reps)
	for _, id := range cfg.IDs {
		for r := 0; r < cfg.Reps; r++ {
			jobs = append(jobs, job{id: id, seed: cfg.BaseSeed + int64(r), rep: r})
		}
	}

	// Workers claim jobs through an atomic cursor and write into their
	// preallocated result slot — no channel handoff, no append, no
	// per-job allocation in the dispatch path. Job i's slot is fixed, so
	// output order is deterministic regardless of claim order.
	results := make([]JobResult, len(jobs))
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < cfg.Parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				j := jobs[i]
				results[i] = runJob(j.id, j.seed, j.rep, cfg)
			}
		}()
	}
	wg.Wait()

	// Jobs were laid out replication-major per experiment, so each
	// experiment's replications are the contiguous block
	// results[k*Reps : (k+1)*Reps] — slice it instead of rebuilding a
	// map of appended copies.
	byID := make(map[string][]JobResult, len(cfg.IDs))
	for k, id := range cfg.IDs {
		// Full slice expression: a duplicated id appends into a fresh
		// array instead of growing over the neighbouring block.
		block := results[k*cfg.Reps : (k+1)*cfg.Reps : (k+1)*cfg.Reps]
		if prev, ok := byID[id]; ok {
			byID[id] = append(append(make([]JobResult, 0, len(prev)+len(block)), prev...), block...)
		} else {
			byID[id] = block
		}
	}
	summaries := make([]Summary, 0, len(cfg.IDs))
	var errs []error
	for _, id := range cfg.IDs {
		reps := byID[id]
		sort.Slice(reps, func(a, b int) bool { return reps[a].Rep < reps[b].Rep })
		s := summarize(id, reps)
		for _, e := range s.Errors {
			errs = append(errs, fmt.Errorf("%s: %s", id, e))
		}
		summaries = append(summaries, s)
	}
	return summaries, errors.Join(errs...)
}

// runJob executes one (experiment, seed) pair in a fresh environment and
// captures the instrumentation the engines accumulated.
func runJob(id string, seed int64, rep int, cfg Config) JobResult {
	env := exp.NewEnv(seed)
	env.Scale = cfg.Scale
	env.Workers = cfg.Workers
	env.Sites = cfg.Sites
	defer env.Close()
	if cfg.DisarmInvariants {
		env.DisarmInvariants()
	}
	start := time.Now()
	res, err := exp.RunEnv(id, env)
	wall := time.Since(start)
	jr := JobResult{
		ID:          id,
		Seed:        seed,
		Rep:         rep,
		WallSeconds: wall.Seconds(),
	}
	ks := env.Stats()
	jr.Events = ks.Processed
	jr.PeakPending = ks.PeakPending
	jr.Engines = ks.Engines
	if jr.WallSeconds > 0 {
		jr.EventsPerSec = float64(jr.Events) / jr.WallSeconds
	}
	if err != nil {
		jr.Err = err.Error()
		return jr
	}
	jr.Result = res
	jr.Report = res.Report()
	return jr
}

// summarize folds one experiment's replications into aggregates. The
// metric buffers are sized up front — one allocation each, no append
// growth.
func summarize(id string, reps []JobResult) Summary {
	s := Summary{ID: id, Reps: reps}
	wall := make([]float64, 0, len(reps))
	events := make([]float64, 0, len(reps))
	rate := make([]float64, 0, len(reps))
	peak := make([]float64, 0, len(reps))
	for _, r := range reps {
		if r.Err != "" {
			s.Errors = append(s.Errors, fmt.Sprintf("seed %d: %s", r.Seed, r.Err))
			continue
		}
		wall = append(wall, r.WallSeconds)
		events = append(events, float64(r.Events))
		rate = append(rate, r.EventsPerSec)
		peak = append(peak, float64(r.PeakPending))
	}
	// An all-failed experiment legitimately has empty aggregates.
	s.Wall, _ = stats.Describe(wall)
	s.Events, _ = stats.Describe(events)
	s.Throughput, _ = stats.Describe(rate)
	s.PeakPending, _ = stats.Describe(peak)
	return s
}

// Table renders the summaries as an aligned human-readable table: one row
// per experiment with wall-time and kernel-throughput aggregates over its
// replications.
func Table(summaries []Summary) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "experiment\treps\twall mean\twall sd\twall [min,max]\tevents\tevents/s\tpeak queue\terrors")
	for _, s := range summaries {
		fmt.Fprintf(w, "%s\t%d\t%s\t%s\t[%s, %s]\t%.0f\t%.0f\t%.0f\t%d\n",
			s.ID, len(s.Reps),
			fmtSec(s.Wall.Mean), fmtSec(s.Wall.StdDev),
			fmtSec(s.Wall.Min), fmtSec(s.Wall.Max),
			s.Events.Mean, s.Throughput.Mean, s.PeakPending.Max,
			len(s.Errors))
	}
	w.Flush()
	return b.String()
}

// fmtSec renders a duration in seconds compactly for the table.
func fmtSec(sec float64) string {
	return time.Duration(sec * float64(time.Second)).Round(100 * time.Microsecond).String()
}
