package harness

import (
	"encoding/json"
	"strings"
	"testing"
)

// fastIDs is a mix of cheap virtual-time experiments spanning several
// substrates. telemetry is deliberately absent everywhere in this file:
// it measures wall-clock ingest rates, so its report text is the one
// documented exception to bit-for-bit determinism.
var fastIDs = []string{"fig1", "idle60", "dvfs", "capping", "hetero"}

func TestRunAggregatesReplications(t *testing.T) {
	sums, err := Run(Config{IDs: fastIDs, BaseSeed: 1, Reps: 3, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != len(fastIDs) {
		t.Fatalf("got %d summaries, want %d", len(sums), len(fastIDs))
	}
	for i, s := range sums {
		if s.ID != fastIDs[i] {
			t.Errorf("summary %d id = %q, want %q (order must follow cfg.IDs)", i, s.ID, fastIDs[i])
		}
		if len(s.Reps) != 3 {
			t.Errorf("%s: %d reps, want 3", s.ID, len(s.Reps))
		}
		for r, jr := range s.Reps {
			if jr.Rep != r {
				t.Errorf("%s: rep %d out of order (got %d)", s.ID, r, jr.Rep)
			}
			if jr.Seed != int64(1+r) {
				t.Errorf("%s rep %d: seed = %d, want %d", s.ID, r, jr.Seed, 1+r)
			}
			if jr.Report == "" {
				t.Errorf("%s rep %d: empty report", s.ID, r)
			}
			if jr.Engines == 0 || jr.Events == 0 {
				t.Errorf("%s rep %d: no kernel activity observed (engines=%d events=%d)",
					s.ID, r, jr.Engines, jr.Events)
			}
		}
		if s.Events.N != 3 {
			t.Errorf("%s: events aggregate over %d samples, want 3", s.ID, s.Events.N)
		}
		if s.Events.Min > s.Events.Mean || s.Events.Mean > s.Events.Max {
			t.Errorf("%s: inconsistent aggregate %+v", s.ID, s.Events)
		}
	}
}

// TestDeterminismAcrossWorkerCounts is the core guarantee: a job's result
// is a pure function of (id, seed), so any worker count yields identical
// per-seed reports and kernel counters.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	cfg := Config{IDs: fastIDs, BaseSeed: 7, Reps: 4}
	cfg.Parallel = 1
	serial, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallel = 8
	parallel, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		for r := range serial[i].Reps {
			a, b := serial[i].Reps[r], parallel[i].Reps[r]
			if a.Report != b.Report {
				t.Errorf("%s seed %d: report differs between 1 and 8 workers", a.ID, a.Seed)
			}
			if a.Events != b.Events || a.PeakPending != b.PeakPending || a.Engines != b.Engines {
				t.Errorf("%s seed %d: kernel counters differ: %d/%d/%d vs %d/%d/%d",
					a.ID, a.Seed, a.Events, a.PeakPending, a.Engines, b.Events, b.PeakPending, b.Engines)
			}
		}
	}
}

// TestSeedReproducibleAcrossRuns: the same configuration run twice in
// the same process yields byte-identical reports and kernel counters —
// reproducibility is not just worker-count independence but freedom
// from any cross-run state.
func TestSeedReproducibleAcrossRuns(t *testing.T) {
	cfg := Config{IDs: fastIDs, BaseSeed: 3, Reps: 2, Parallel: 4}
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		for r := range first[i].Reps {
			a, b := first[i].Reps[r], second[i].Reps[r]
			if a.Report != b.Report {
				t.Errorf("%s seed %d: report differs between identical runs", a.ID, a.Seed)
			}
			if a.Events != b.Events || a.PeakPending != b.PeakPending || a.Engines != b.Engines {
				t.Errorf("%s seed %d: kernel counters differ between identical runs", a.ID, a.Seed)
			}
		}
	}
}

// TestInvariantsObservational: arming the physical-law checker must not
// change a single byte of any result — it observes the simulation, it
// never steers it. A divergence here means the checker mutated state
// (e.g. forced a server sync) and every armed run is suspect.
func TestInvariantsObservational(t *testing.T) {
	cfg := Config{IDs: fastIDs, BaseSeed: 11, Reps: 2, Parallel: 4}
	armed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DisarmInvariants = true
	disarmed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range armed {
		for r := range armed[i].Reps {
			a, b := armed[i].Reps[r], disarmed[i].Reps[r]
			if a.Report != b.Report {
				t.Errorf("%s seed %d: report differs armed vs disarmed", a.ID, a.Seed)
			}
			if a.Events != b.Events || a.PeakPending != b.PeakPending || a.Engines != b.Engines {
				t.Errorf("%s seed %d: kernel counters differ armed vs disarmed", a.ID, a.Seed)
			}
		}
	}
}

func TestSeedReplicationsDiffer(t *testing.T) {
	// Stochastic experiments must actually vary across seeds, otherwise
	// the aggregates are theater. oversub draws per-server power samples.
	sums, err := Run(Config{IDs: []string{"oversub"}, BaseSeed: 1, Reps: 3, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	reps := sums[0].Reps
	if reps[0].Report == reps[1].Report && reps[1].Report == reps[2].Report {
		t.Error("oversub reports identical across three seeds; replication is not varying the seed")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	sums, err := Run(Config{IDs: []string{"fig1", "nope"}, BaseSeed: 1})
	if err == nil {
		t.Fatal("unknown experiment should surface an error")
	}
	if len(sums) != 2 {
		t.Fatalf("got %d summaries, want 2 (good jobs must still complete)", len(sums))
	}
	if len(sums[1].Errors) != 1 {
		t.Errorf("nope: errors = %v, want 1 entry", sums[1].Errors)
	}
	if sums[0].Events.N != 1 {
		t.Errorf("fig1 should have succeeded alongside the failure")
	}
}

func TestNormalizeDefaults(t *testing.T) {
	c := Config{}.normalize()
	if len(c.IDs) == 0 {
		t.Error("normalize should default to all experiment ids")
	}
	if c.Reps != 1 || c.Parallel < 1 {
		t.Errorf("normalize defaults: reps=%d parallel=%d", c.Reps, c.Parallel)
	}
}

func TestSummaryJSONRoundTrip(t *testing.T) {
	sums, err := Run(Config{IDs: []string{"fig1"}, BaseSeed: 1, Reps: 2, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(sums)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"wall_seconds"`, `"events_per_sec"`, `"peak_pending"`, `"seed"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("JSON sidecar missing %s:\n%s", key, data)
		}
	}
	var back []Summary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back[0].Reps[1].Events != sums[0].Reps[1].Events {
		t.Error("events did not survive the JSON round trip")
	}
}

func TestTableRendersOneRowPerExperiment(t *testing.T) {
	sums, err := Run(Config{IDs: fastIDs, BaseSeed: 1, Reps: 2, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	table := Table(sums)
	lines := strings.Split(strings.TrimSpace(table), "\n")
	if len(lines) != 1+len(fastIDs) {
		t.Fatalf("table has %d lines, want header + %d rows:\n%s", len(lines), len(fastIDs), table)
	}
	if !strings.Contains(lines[0], "events/s") || !strings.Contains(lines[0], "peak queue") {
		t.Errorf("missing header columns:\n%s", lines[0])
	}
	for _, id := range fastIDs {
		if !strings.Contains(table, id) {
			t.Errorf("table missing row for %s", id)
		}
	}
}

// TestDuplicateIDsKeepAllReplications guards the block-sliced result
// grouping: a repeated id must still see every replication of that
// experiment (both blocks), and neighbouring experiments' blocks must
// stay untouched.
func TestDuplicateIDsKeepAllReplications(t *testing.T) {
	id := fastIDs[0]
	other := fastIDs[1]
	sums, err := Run(Config{IDs: []string{id, other, id}, BaseSeed: 1, Reps: 2, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 3 {
		t.Fatalf("got %d summaries, want 3", len(sums))
	}
	for _, i := range []int{0, 2} {
		s := sums[i]
		if s.ID != id {
			t.Fatalf("summary %d id = %q, want %q", i, s.ID, id)
		}
		if len(s.Reps) != 4 {
			t.Fatalf("duplicated id sees %d reps, want 4 (both blocks)", len(s.Reps))
		}
		for _, jr := range s.Reps {
			if jr.ID != id {
				t.Errorf("rep for %q leaked into %q summary", jr.ID, id)
			}
		}
	}
	if s := sums[1]; s.ID != other || len(s.Reps) != 2 {
		t.Fatalf("middle summary %q has %d reps, want %q with 2", s.ID, len(s.Reps), other)
	}
}
