package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestEnergyMeterExactIntegration(t *testing.T) {
	var m EnergyMeter
	if err := m.Observe(0, 100); err != nil {
		t.Fatal(err)
	}
	if err := m.Observe(time.Hour, 200); err != nil {
		t.Fatal(err)
	}
	if err := m.Finish(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	// 100 W for 1 h + 200 W for 1 h = 0.3 kWh.
	if math.Abs(m.KWh()-0.3) > 1e-12 {
		t.Errorf("KWh = %v, want 0.3", m.KWh())
	}
	if math.Abs(m.Joules()-1.08e6) > 1e-3 {
		t.Errorf("Joules = %v, want 1.08e6", m.Joules())
	}
}

func TestEnergyMeterBackwardsTime(t *testing.T) {
	var m EnergyMeter
	if err := m.Observe(time.Hour, 100); err != nil {
		t.Fatal(err)
	}
	if err := m.Observe(time.Minute, 100); err == nil {
		t.Error("backwards time should error")
	}
}

func TestEnergyMeterZeroValueUsable(t *testing.T) {
	var m EnergyMeter
	if m.Joules() != 0 || m.KWh() != 0 {
		t.Error("zero-value meter should read zero")
	}
	// Finish before any observation just sets the mark.
	if err := m.Finish(time.Hour); err != nil {
		t.Fatal(err)
	}
	if m.Joules() != 0 {
		t.Error("finish without observations should accrue nothing")
	}
}

func TestTally(t *testing.T) {
	var c Tally
	c.Inc("trips")
	c.Inc("trips")
	c.Add("boots", 5)
	if c.Get("trips") != 2 || c.Get("boots") != 5 {
		t.Errorf("Tally = %s", c.String())
	}
	if c.Get("missing") != 0 {
		t.Error("missing counter should read 0")
	}
	s := c.String()
	if !strings.Contains(s, "boots=5") || !strings.Contains(s, "trips=2") {
		t.Errorf("String = %q", s)
	}
	// Sorted output: boots before trips.
	if strings.Index(s, "boots") > strings.Index(s, "trips") {
		t.Errorf("String not sorted: %q", s)
	}
}

func TestStateTracker(t *testing.T) {
	var s StateTracker
	if err := s.Observe(0, "off"); err != nil {
		t.Fatal(err)
	}
	if err := s.Observe(time.Hour, "on"); err != nil {
		t.Fatal(err)
	}
	if err := s.Observe(3*time.Hour, "off"); err != nil {
		t.Fatal(err)
	}
	if err := s.Finish(4 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if s.In("off") != 2*time.Hour {
		t.Errorf("off time = %v, want 2h", s.In("off"))
	}
	if s.In("on") != 2*time.Hour {
		t.Errorf("on time = %v, want 2h", s.In("on"))
	}
	if math.Abs(s.Fraction("on")-0.5) > 1e-12 {
		t.Errorf("on fraction = %v, want 0.5", s.Fraction("on"))
	}
	if err := s.Observe(time.Hour, "x"); err == nil {
		t.Error("backwards time should error")
	}
}

func TestStateTrackerEmpty(t *testing.T) {
	var s StateTracker
	if s.Fraction("anything") != 0 {
		t.Error("empty tracker fraction should be 0")
	}
}

func TestSLAAccumulator(t *testing.T) {
	a, err := NewSLAAccumulator(100 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	a.Observe(50 * time.Millisecond)
	a.Observe(150 * time.Millisecond)
	a.Observe(90 * time.Millisecond)
	a.Observe(400 * time.Millisecond)
	if a.Total() != 4 || a.Violations() != 2 {
		t.Errorf("total=%d violations=%d", a.Total(), a.Violations())
	}
	if a.ViolationRate() != 0.5 {
		t.Errorf("rate = %v, want 0.5", a.ViolationRate())
	}
	if a.Worst() != 400*time.Millisecond {
		t.Errorf("worst = %v", a.Worst())
	}
	if _, err := NewSLAAccumulator(0); err == nil {
		t.Error("zero target should error")
	}
	empty, _ := NewSLAAccumulator(time.Second)
	if empty.ViolationRate() != 0 {
		t.Error("empty accumulator rate should be 0")
	}
}
