// Package metrics provides the accounting used by experiments and the
// macro-resource manager: exact energy integration for piecewise-constant
// power, named counters, time-in-state tracking, and SLA violation
// accumulation.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// EnergyMeter integrates a piecewise-constant power signal exactly:
// Observe(t, w) states that the draw is w from t onward; energy between
// observations accrues at the previously observed level.
type EnergyMeter struct {
	lastAt  time.Duration
	lastW   float64
	joules  float64
	started bool
}

// Observe records the power level w (watts) effective from now onward.
func (m *EnergyMeter) Observe(now time.Duration, w float64) error {
	if m.started && now < m.lastAt {
		return fmt.Errorf("metrics: time moved backwards %v -> %v", m.lastAt, now)
	}
	if m.started {
		m.joules += m.lastW * (now - m.lastAt).Seconds()
	}
	m.lastAt = now
	m.lastW = w
	m.started = true
	return nil
}

// Finish integrates up to now without changing the level.
func (m *EnergyMeter) Finish(now time.Duration) error {
	return m.Observe(now, m.lastW)
}

// Joules reports the accumulated energy.
func (m *EnergyMeter) Joules() float64 { return m.joules }

// KWh reports the accumulated energy in kilowatt-hours.
func (m *EnergyMeter) KWh() float64 { return m.joules / 3.6e6 }

// Tally is a set of named counters (not safe for concurrent use; the
// simulation kernel is single-threaded).
type Tally struct {
	counts map[string]int64
}

// Inc adds one to a counter.
func (t *Tally) Inc(name string) { t.Add(name, 1) }

// Add adds delta to a counter.
func (t *Tally) Add(name string, delta int64) {
	if t.counts == nil {
		t.counts = make(map[string]int64)
	}
	t.counts[name] += delta
}

// Get reads a counter (0 when absent).
func (t *Tally) Get(name string) int64 { return t.counts[name] }

// String renders counters sorted by name.
func (t *Tally) String() string {
	names := make([]string, 0, len(t.counts))
	for n := range t.counts {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, n := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", n, t.counts[n]))
	}
	return strings.Join(parts, " ")
}

// StateTracker accumulates time spent in named states.
type StateTracker struct {
	current string
	since   time.Duration
	total   map[string]time.Duration
	started bool
}

// Observe records that the tracked entity is in `state` from now onward.
func (s *StateTracker) Observe(now time.Duration, state string) error {
	if s.started && now < s.since {
		return fmt.Errorf("metrics: time moved backwards %v -> %v", s.since, now)
	}
	if s.total == nil {
		s.total = make(map[string]time.Duration)
	}
	if s.started {
		s.total[s.current] += now - s.since
	}
	s.current = state
	s.since = now
	s.started = true
	return nil
}

// Finish closes the current interval at now.
func (s *StateTracker) Finish(now time.Duration) error {
	return s.Observe(now, s.current)
}

// In reports the accumulated time in a state.
func (s *StateTracker) In(state string) time.Duration { return s.total[state] }

// Fraction reports the share of total tracked time spent in a state.
func (s *StateTracker) Fraction(state string) float64 {
	var total time.Duration
	for _, d := range s.total {
		total += d
	}
	if total == 0 {
		return 0
	}
	return float64(s.total[state]) / float64(total)
}

// SLAAccumulator tracks response-time observations against a target.
type SLAAccumulator struct {
	target     time.Duration
	total      int64
	violations int64
	worst      time.Duration
}

// NewSLAAccumulator builds an accumulator for the given target.
func NewSLAAccumulator(target time.Duration) (*SLAAccumulator, error) {
	if target <= 0 {
		return nil, fmt.Errorf("metrics: SLA target %v must be positive", target)
	}
	return &SLAAccumulator{target: target}, nil
}

// Observe folds one response-time measurement.
func (a *SLAAccumulator) Observe(response time.Duration) {
	a.total++
	if response > a.target {
		a.violations++
	}
	if response > a.worst {
		a.worst = response
	}
}

// Violations reports the count of observations above target.
func (a *SLAAccumulator) Violations() int64 { return a.violations }

// Total reports the number of observations.
func (a *SLAAccumulator) Total() int64 { return a.total }

// ViolationRate reports violations/total (0 when empty).
func (a *SLAAccumulator) ViolationRate() float64 {
	if a.total == 0 {
		return 0
	}
	return float64(a.violations) / float64(a.total)
}

// Worst reports the worst observed response.
func (a *SLAAccumulator) Worst() time.Duration { return a.worst }
