package oversub

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

func TestGaussianValidation(t *testing.T) {
	tests := []struct {
		name string
		g    Gaussian
	}{
		{"empty", Gaussian{}},
		{"mismatch", Gaussian{Means: []float64{1}, SDs: []float64{1, 2}}},
		{"negative mean", Gaussian{Means: []float64{-1}, SDs: []float64{1}}},
		{"negative sd", Gaussian{Means: []float64{1}, SDs: []float64{-1}}},
		{"rho out of range", Gaussian{Means: []float64{1}, SDs: []float64{1}, Rho: 2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.g.Validate(); err == nil {
				t.Error("want validation error")
			}
		})
	}
}

func TestGaussianMoments(t *testing.T) {
	g := Gaussian{Means: []float64{100, 100}, SDs: []float64{10, 10}, Rho: 0}
	if g.Mean() != 200 {
		t.Errorf("Mean = %v, want 200", g.Mean())
	}
	// Independent: sd = sqrt(200).
	if math.Abs(g.SD()-math.Sqrt(200)) > 1e-12 {
		t.Errorf("independent SD = %v, want %v", g.SD(), math.Sqrt(200))
	}
	// Perfect correlation: sd = 20.
	g.Rho = 1
	if math.Abs(g.SD()-20) > 1e-9 {
		t.Errorf("correlated SD = %v, want 20", g.SD())
	}
	// Perfect anti-correlation: sd = 0.
	g.Rho = -1
	if g.SD() > 1e-9 {
		t.Errorf("anti-correlated SD = %v, want 0", g.SD())
	}
}

func TestViolationProbability(t *testing.T) {
	g := Gaussian{Means: []float64{100}, SDs: []float64{10}}
	p, err := g.ViolationProbability(100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.5) > 1e-9 {
		t.Errorf("P(>mean) = %v, want 0.5", p)
	}
	p, err = g.ViolationProbability(120) // two sigma
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.02275) > 1e-3 {
		t.Errorf("P(>mean+2sd) = %v, want ~0.0228", p)
	}
	// Deterministic tenants.
	d := Gaussian{Means: []float64{100}, SDs: []float64{0}}
	if p, _ := d.ViolationProbability(99); p != 1 {
		t.Errorf("deterministic over capacity = %v, want 1", p)
	}
	if p, _ := d.ViolationProbability(101); p != 0 {
		t.Errorf("deterministic under capacity = %v, want 0", p)
	}
	bad := Gaussian{}
	if _, err := bad.ViolationProbability(1); err == nil {
		t.Error("invalid model should error")
	}
}

func TestSafeCapacityMeetsEpsilon(t *testing.T) {
	g := Gaussian{Means: []float64{100, 150, 200}, SDs: []float64{20, 10, 30}, Rho: 0.2}
	for _, eps := range []float64{0.1, 0.01, 0.001} {
		cap, err := g.SafeCapacity(eps)
		if err != nil {
			t.Fatal(err)
		}
		p, err := g.ViolationProbability(cap)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p-eps) > 0.1*eps+1e-9 {
			t.Errorf("violation at safe capacity(%v) = %v", eps, p)
		}
	}
	if _, err := g.SafeCapacity(0); err == nil {
		t.Error("epsilon 0 should error")
	}
	if _, err := g.SafeCapacity(1); err == nil {
		t.Error("epsilon 1 should error")
	}
}

func TestAntiCorrelationEnablesMoreOversubscription(t *testing.T) {
	// The §5.2 claim quantified: at the same tolerance, anti-correlated
	// tenants need less capacity than correlated ones.
	correlated := Gaussian{Means: []float64{100, 100}, SDs: []float64{20, 20}, Rho: 0.9}
	antiCorr := Gaussian{Means: []float64{100, 100}, SDs: []float64{20, 20}, Rho: -0.9}
	cc, err := correlated.SafeCapacity(0.001)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := antiCorr.SafeCapacity(0.001)
	if err != nil {
		t.Fatal(err)
	}
	if ca >= cc {
		t.Errorf("anti-correlated capacity %v not below correlated %v", ca, cc)
	}
	// Highly correlated tenants cannot be oversubscribed much: their
	// safe capacity approaches the worst case. Anti-correlated tenants
	// leave a large gap.
	worst := antiCorr.WorstCase(3)
	if worst <= ca*1.2 {
		t.Errorf("worst case %v should comfortably exceed anti-correlated safe capacity %v", worst, ca)
	}
}

func diurnalPair(t *testing.T, phaseGapHours float64) []*trace.Series {
	t.Helper()
	rng := sim.NewRNG(1)
	a := trace.DefaultDiurnalConfig()
	a.Duration = 3 * 24 * time.Hour
	a.NoiseSD = 0.05
	a.BurstRate = 0
	b := a
	b.PeakHour = a.PeakHour + phaseGapHours
	sa, err := trace.GenerateDiurnal(a, rng.Fork("a"))
	if err != nil {
		t.Fatal(err)
	}
	sb, err := trace.GenerateDiurnal(b, rng.Fork("b"))
	if err != nil {
		t.Fatal(err)
	}
	return []*trace.Series{sa, sb}
}

func TestEmpiricalPeakOfSumVsSumOfPeaks(t *testing.T) {
	e, err := NewEmpirical(diurnalPair(t, 12))
	if err != nil {
		t.Fatal(err)
	}
	if e.PeakOfSum() >= e.SumOfPeaks() {
		t.Errorf("peak of sum %v not below sum of peaks %v for anti-correlated tenants",
			e.PeakOfSum(), e.SumOfPeaks())
	}
	// In-phase tenants: the two peaks nearly coincide.
	inPhase, err := NewEmpirical(diurnalPair(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	ratioAnti := e.PeakOfSum() / e.SumOfPeaks()
	ratioIn := inPhase.PeakOfSum() / inPhase.SumOfPeaks()
	if ratioAnti >= ratioIn {
		t.Errorf("anti-phase ratio %v not below in-phase ratio %v", ratioAnti, ratioIn)
	}
}

func TestEmpiricalViolationAndCapacity(t *testing.T) {
	e, err := NewEmpirical(diurnalPair(t, 12))
	if err != nil {
		t.Fatal(err)
	}
	// Violation fraction is monotone decreasing in capacity.
	prev := 1.0
	for _, c := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0, 2.0} {
		f := e.ViolationFraction(c * e.SumOfPeaks())
		if f > prev+1e-12 {
			t.Fatalf("violation fraction not monotone at %v", c)
		}
		prev = f
	}
	// CapacityFor meets its tolerance.
	for _, eps := range []float64{0.001, 0.01, 0.05} {
		cap, err := e.CapacityFor(eps)
		if err != nil {
			t.Fatal(err)
		}
		if f := e.ViolationFraction(cap); f > eps {
			t.Errorf("violation at CapacityFor(%v) = %v", eps, f)
		}
	}
	if _, err := e.CapacityFor(1); err == nil {
		t.Error("epsilon 1 should error")
	}
	if _, err := e.CapacityFor(-0.1); err == nil {
		t.Error("negative epsilon should error")
	}
}

func TestSafeRatioAboveOneForAntiCorrelated(t *testing.T) {
	e, err := NewEmpirical(diurnalPair(t, 12))
	if err != nil {
		t.Fatal(err)
	}
	ratio, err := e.SafeRatio(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if ratio <= 1.05 {
		t.Errorf("safe ratio = %v, want meaningfully above 1 (oversubscription pays)", ratio)
	}
}

func TestUtilizationGain(t *testing.T) {
	e, err := NewEmpirical(diurnalPair(t, 12))
	if err != nil {
		t.Fatal(err)
	}
	staticU, overU, err := e.UtilizationGain(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if overU <= staticU {
		t.Errorf("oversubscribed utilization %v not above static %v", overU, staticU)
	}
	if staticU <= 0 || overU > 1.01 {
		t.Errorf("utilizations out of range: static %v, oversub %v", staticU, overU)
	}
}

func TestNewEmpiricalValidation(t *testing.T) {
	if _, err := NewEmpirical(nil); err == nil {
		t.Error("no tenants should error")
	}
	a := &trace.Series{Step: time.Minute, Values: []float64{1}}
	b := &trace.Series{Step: time.Hour, Values: []float64{1}}
	if _, err := NewEmpirical([]*trace.Series{a, b}); err == nil {
		t.Error("mismatched steps should error")
	}
	empty := &trace.Series{Step: time.Minute}
	if _, err := NewEmpirical([]*trace.Series{empty}); err == nil {
		t.Error("empty series should error")
	}
}

func TestGaussianSDNegativeVarianceClamped(t *testing.T) {
	// Strong anti-correlation with unequal sds can push the naive
	// variance formula negative; SD must clamp to zero, not NaN.
	g := Gaussian{Means: []float64{10, 10, 10}, SDs: []float64{5, 1, 1}, Rho: -1}
	if sd := g.SD(); math.IsNaN(sd) || sd < 0 {
		t.Errorf("SD = %v, want clamped non-negative", sd)
	}
}

func TestSafeCapacityValidation(t *testing.T) {
	bad := Gaussian{}
	if _, err := bad.SafeCapacity(0.01); err == nil {
		t.Error("invalid model should error")
	}
}

func TestViolationFractionEmpty(t *testing.T) {
	var e Empirical
	if e.ViolationFraction(10) != 0 {
		t.Error("empty aggregate should report 0")
	}
}

func TestSafeRatioErrors(t *testing.T) {
	e, err := NewEmpirical([]*trace.Series{{Step: time.Minute, Values: []float64{0, 0, 0}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.SafeRatio(0.01); err == nil {
		t.Error("all-zero aggregate should error (degenerate quantile)")
	}
	if _, err := e.SafeRatio(2); err == nil {
		t.Error("invalid epsilon should error")
	}
}

func TestUtilizationGainErrors(t *testing.T) {
	var empty Empirical
	if _, _, err := empty.UtilizationGain(0.01); err == nil {
		t.Error("empty aggregate should error")
	}
	zero, err := NewEmpirical([]*trace.Series{{Step: time.Minute, Values: []float64{0, 0}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := zero.UtilizationGain(0.01); err == nil {
		t.Error("degenerate aggregate should error")
	}
}
