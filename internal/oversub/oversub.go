// Package oversub provides the statistical machinery behind §3.1's
// oversubscription argument: "the host oversells its services to the
// extent that if every subscriber uses the services at the same time, the
// capacity will be exceeded. However, due to the statistical variations
// of utilization, with overwhelming probability, the host is safe."
//
// It offers an analytic Gaussian aggregate (with pairwise correlation —
// anti-correlated tenants oversubscribe more safely) and empirical,
// trace-driven violation measurement, plus safe-capacity and
// safe-ratio searches.
package oversub

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
	"repro/internal/trace"
)

// Gaussian models the aggregate power demand of n tenants as a normal
// sum: tenant i has mean Means[i] and standard deviation SDs[i];
// every pair is correlated with coefficient Rho.
type Gaussian struct {
	Means []float64
	SDs   []float64
	Rho   float64
}

// Validate checks the model.
func (g Gaussian) Validate() error {
	if len(g.Means) == 0 || len(g.Means) != len(g.SDs) {
		return fmt.Errorf("oversub: need matching non-empty means/sds, got %d/%d", len(g.Means), len(g.SDs))
	}
	for i := range g.Means {
		if g.Means[i] < 0 || g.SDs[i] < 0 {
			return fmt.Errorf("oversub: tenant %d has negative parameters", i)
		}
	}
	if g.Rho < -1 || g.Rho > 1 {
		return fmt.Errorf("oversub: correlation %v out of [-1,1]", g.Rho)
	}
	return nil
}

// Mean returns the aggregate mean demand.
func (g Gaussian) Mean() float64 { return stats.Sum(g.Means) }

// SD returns the aggregate standard deviation:
// sqrt(Σσ² + ρ·Σ_{i≠j} σiσj).
func (g Gaussian) SD() float64 {
	var varSum, crossSum, sdSum float64
	for _, sd := range g.SDs {
		varSum += sd * sd
		sdSum += sd
	}
	// Σ_{i≠j} σiσj = (Σσ)² − Σσ².
	crossSum = sdSum*sdSum - varSum
	v := varSum + g.Rho*crossSum
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// ViolationProbability returns P(total demand > capacity).
func (g Gaussian) ViolationProbability(capacity float64) (float64, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	sd := g.SD()
	if sd == 0 {
		if g.Mean() > capacity {
			return 1, nil
		}
		return 0, nil
	}
	return stats.NormalTail((capacity - g.Mean()) / sd), nil
}

// SafeCapacity returns the smallest capacity whose violation probability
// is at most epsilon: mean + z(1−ε)·sd.
func (g Gaussian) SafeCapacity(epsilon float64) (float64, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	if epsilon <= 0 || epsilon >= 1 {
		return 0, fmt.Errorf("oversub: epsilon %v out of (0,1)", epsilon)
	}
	z, err := stats.NormalQuantile(1 - epsilon)
	if err != nil {
		return 0, err
	}
	return g.Mean() + z*g.SD(), nil
}

// WorstCase returns the worst-case (all tenants at mean + k·sd
// simultaneously) provisioning level, the static rule oversubscription
// replaces. k is the per-tenant peak allowance in standard deviations.
func (g Gaussian) WorstCase(k float64) float64 {
	var total float64
	for i := range g.Means {
		total += g.Means[i] + k*g.SDs[i]
	}
	return total
}

// Empirical computes trace-driven oversubscription statistics from
// per-tenant demand series (all series must share the same step; shorter
// series end early and contribute nothing past their end).
type Empirical struct {
	totals []float64
	peaks  []float64
}

// NewEmpirical aligns the series sample-by-sample.
func NewEmpirical(tenants []*trace.Series) (*Empirical, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("oversub: need at least one tenant series")
	}
	step := tenants[0].Step
	n := 0
	for i, s := range tenants {
		if s.Step != step {
			return nil, fmt.Errorf("oversub: tenant %d step %v != %v", i, s.Step, step)
		}
		if s.Len() > n {
			n = s.Len()
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("oversub: all tenant series empty")
	}
	e := &Empirical{totals: make([]float64, n), peaks: make([]float64, len(tenants))}
	for ti, s := range tenants {
		for i, v := range s.Values {
			e.totals[i] += v
			if v > e.peaks[ti] {
				e.peaks[ti] = v
			}
		}
	}
	return e, nil
}

// SumOfPeaks is the static worst-case provisioning level: every tenant at
// its own peak simultaneously.
func (e *Empirical) SumOfPeaks() float64 { return stats.Sum(e.peaks) }

// PeakOfSum is the actual peak of the aggregate.
func (e *Empirical) PeakOfSum() float64 {
	var m float64
	for _, v := range e.totals {
		if v > m {
			m = v
		}
	}
	return m
}

// ViolationFraction is the fraction of time the aggregate exceeds the
// given capacity.
func (e *Empirical) ViolationFraction(capacity float64) float64 {
	if len(e.totals) == 0 {
		return 0
	}
	over := 0
	for _, v := range e.totals {
		if v > capacity {
			over++
		}
	}
	return float64(over) / float64(len(e.totals))
}

// CapacityFor returns the smallest capacity with violation fraction at
// most epsilon — the (1−ε) quantile of the aggregate.
func (e *Empirical) CapacityFor(epsilon float64) (float64, error) {
	if epsilon < 0 || epsilon >= 1 {
		return 0, fmt.Errorf("oversub: epsilon %v out of [0,1)", epsilon)
	}
	sorted := make([]float64, len(e.totals))
	copy(sorted, e.totals)
	sort.Float64s(sorted)
	idx := int(math.Ceil(float64(len(sorted))*(1-epsilon))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx], nil
}

// SafeRatio returns the oversubscription ratio achievable at violation
// tolerance epsilon: worst-case provisioning divided by the (1−ε)
// aggregate quantile. A ratio of 1.4 means the facility can promise 40 %
// more nameplate capacity than it physically has.
func (e *Empirical) SafeRatio(epsilon float64) (float64, error) {
	q, err := e.CapacityFor(epsilon)
	if err != nil {
		return 0, err
	}
	if q <= 0 {
		return 0, fmt.Errorf("oversub: degenerate aggregate quantile %v", q)
	}
	return e.SumOfPeaks() / q, nil
}

// UtilizationGain compares average utilization of the facility under
// worst-case provisioning vs oversubscribed provisioning at tolerance
// epsilon.
func (e *Empirical) UtilizationGain(epsilon float64) (staticUtil, oversubUtil float64, err error) {
	if len(e.totals) == 0 {
		return 0, 0, fmt.Errorf("oversub: empty aggregate")
	}
	mean := stats.Mean(e.totals)
	static := e.SumOfPeaks()
	if static <= 0 {
		return 0, 0, fmt.Errorf("oversub: degenerate worst case")
	}
	q, err := e.CapacityFor(epsilon)
	if err != nil {
		return 0, 0, err
	}
	if q <= 0 {
		return 0, 0, fmt.Errorf("oversub: degenerate quantile")
	}
	return mean / static, mean / q, nil
}
