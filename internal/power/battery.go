package power

import (
	"fmt"
	"time"
)

// Battery models the UPS energy store of §2.1 ("power drawn from the grid
// is transformed and conditioned to charge the UPS system (based on
// batteries or flying wheels)"): it charges from the grid, discharges to
// carry the critical load through an outage, and defines the facility's
// ride-through window until generators pick up.
type Battery struct {
	capacityJ  float64
	chargeJ    float64
	maxChargeW float64
	efficiency float64
	cycles     int
	depleted   int
}

// NewBattery builds a store with the given usable capacity (J), maximum
// charging power (W), and round-trip efficiency in (0,1].
func NewBattery(capacityJ, maxChargeW, efficiency float64) (*Battery, error) {
	if capacityJ <= 0 {
		return nil, fmt.Errorf("power: battery capacity %v must be positive", capacityJ)
	}
	if maxChargeW <= 0 {
		return nil, fmt.Errorf("power: battery charge rate %v must be positive", maxChargeW)
	}
	if efficiency <= 0 || efficiency > 1 {
		return nil, fmt.Errorf("power: battery efficiency %v out of (0,1]", efficiency)
	}
	return &Battery{
		capacityJ:  capacityJ,
		chargeJ:    capacityJ, // delivered full, as installed systems are
		maxChargeW: maxChargeW,
		efficiency: efficiency,
	}, nil
}

// BatteryForAutonomy sizes a battery to carry loadW for the given
// autonomy (typical UPS strings hold 5–15 minutes, enough to start and
// transfer to generators).
func BatteryForAutonomy(loadW float64, autonomy time.Duration, efficiency float64) (*Battery, error) {
	if loadW <= 0 {
		return nil, fmt.Errorf("power: autonomy load %v must be positive", loadW)
	}
	if autonomy <= 0 {
		return nil, fmt.Errorf("power: autonomy %v must be positive", autonomy)
	}
	capacity := loadW * autonomy.Seconds() / efficiency
	return NewBattery(capacity, loadW/4, efficiency)
}

// ChargeFraction reports the state of charge in [0,1].
func (b *Battery) ChargeFraction() float64 { return b.chargeJ / b.capacityJ }

// Cycles reports completed discharge events (any depth).
func (b *Battery) Cycles() int { return b.cycles }

// Depletions reports discharges that ran the store to empty — the
// facility-drop events a tier model cares about.
func (b *Battery) Depletions() int { return b.depleted }

// Autonomy reports how long the current charge carries loadW.
func (b *Battery) Autonomy(loadW float64) time.Duration {
	if loadW <= 0 {
		return time.Duration(1<<62 - 1)
	}
	secs := b.chargeJ * b.efficiency / loadW
	return time.Duration(secs * float64(time.Second))
}

// Discharge carries loadW for dt, returning the duration actually covered
// (shorter when the store empties mid-interval) and whether the load was
// fully carried.
func (b *Battery) Discharge(loadW float64, dt time.Duration) (covered time.Duration, ok bool) {
	if loadW <= 0 || dt <= 0 {
		return dt, true
	}
	b.cycles++
	needJ := loadW * dt.Seconds() / b.efficiency
	if needJ <= b.chargeJ {
		b.chargeJ -= needJ
		return dt, true
	}
	secs := b.chargeJ * b.efficiency / loadW
	b.chargeJ = 0
	b.depleted++
	return time.Duration(secs * float64(time.Second)), false
}

// Recharge absorbs grid power for dt at up to the maximum charge rate and
// returns the grid power actually drawn (the charging load the facility's
// feed must carry on top of the critical load).
func (b *Battery) Recharge(dt time.Duration) (gridW float64) {
	if dt <= 0 || b.chargeJ >= b.capacityJ {
		return 0
	}
	roomJ := b.capacityJ - b.chargeJ
	maxJ := b.maxChargeW * dt.Seconds()
	put := maxJ
	if put > roomJ {
		put = roomJ
	}
	b.chargeJ += put
	// Charging losses appear as extra grid draw.
	return put / b.efficiency / dt.Seconds()
}

// RideThrough answers the §2.1 sizing question directly: given the
// battery and critical load, does the store cover an outage of the given
// length (e.g. until generators are online)?
func (b *Battery) RideThrough(loadW float64, outage time.Duration) bool {
	return b.Autonomy(loadW) >= outage
}
