package power

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestComponentAvailability(t *testing.T) {
	c := Component{Name: "x", MTBF: 99 * time.Hour, MTTR: time.Hour}
	a, err := c.Availability()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-0.99) > 1e-12 {
		t.Errorf("availability = %v, want 0.99", a)
	}
	if _, err := (Component{Name: "bad", MTBF: 0}).Availability(); err == nil {
		t.Error("zero MTBF should error")
	}
	if _, err := (Component{Name: "bad", MTBF: time.Hour, MTTR: -time.Hour}).Availability(); err == nil {
		t.Error("negative MTTR should error")
	}
}

func TestSeriesAvailability(t *testing.T) {
	a, err := SeriesAvailability(0.9, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-0.81) > 1e-12 {
		t.Errorf("series = %v, want 0.81", a)
	}
	if _, err := SeriesAvailability(1.5); err == nil {
		t.Error("out-of-range availability should error")
	}
	empty, err := SeriesAvailability()
	if err != nil || empty != 1 {
		t.Errorf("empty series = %v, %v; want 1, nil", empty, err)
	}
}

func TestRedundantAvailability(t *testing.T) {
	// 1-of-2 with a=0.9: 1 - 0.01 = 0.99.
	a, err := RedundantAvailability(0.9, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-0.99) > 1e-9 {
		t.Errorf("1-of-2 = %v, want 0.99", a)
	}
	// 2-of-2 is just series.
	a, err = RedundantAvailability(0.9, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-0.81) > 1e-9 {
		t.Errorf("2-of-2 = %v, want 0.81", a)
	}
	// Degenerate probabilities.
	if a, _ := RedundantAvailability(0, 1, 3); a != 0 {
		t.Errorf("all-dead redundancy = %v, want 0", a)
	}
	if a, _ := RedundantAvailability(1, 2, 3); a != 1 {
		t.Errorf("perfect units = %v, want 1", a)
	}
	if _, err := RedundantAvailability(0.9, 0, 2); err == nil {
		t.Error("need=0 should error")
	}
	if _, err := RedundantAvailability(0.9, 3, 2); err == nil {
		t.Error("need>have should error")
	}
	if _, err := RedundantAvailability(1.2, 1, 2); err == nil {
		t.Error("a>1 should error")
	}
}

func TestAvailabilityArgumentValidation(t *testing.T) {
	redundant := []struct {
		name       string
		a          float64
		need, have int
	}{
		{"NaN availability", math.NaN(), 1, 2},
		{"negative availability", -0.1, 1, 2},
		{"availability above one", 1.0001, 1, 2},
		{"zero need", 0.9, 0, 2},
		{"negative need", 0.9, -1, 2},
		{"need exceeds have", 0.9, 3, 2},
	}
	for _, tc := range redundant {
		if _, err := RedundantAvailability(tc.a, tc.need, tc.have); err == nil {
			t.Errorf("RedundantAvailability: %s accepted", tc.name)
		}
	}
	series := []struct {
		name string
		as   []float64
	}{
		{"NaN element", []float64{0.9, math.NaN()}},
		{"negative element", []float64{0.9, -0.5}},
		{"element above one", []float64{2, 0.9}},
	}
	for _, tc := range series {
		if _, err := SeriesAvailability(tc.as...); err == nil {
			t.Errorf("SeriesAvailability: %s accepted", tc.name)
		}
	}
}

func TestRedundancyHelps(t *testing.T) {
	check := func(rawA float64, extra uint8) bool {
		a := math.Abs(math.Mod(rawA, 1))
		if math.IsNaN(a) {
			return true
		}
		have := 2 + int(extra%4)
		single := a
		redundant, err := RedundantAvailability(a, 1, have)
		if err != nil {
			return false
		}
		return redundant >= single-1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTier2DesignLandsInBand(t *testing.T) {
	// Paper §2.1: "A tier-2 data center, providing 99.741% availability,
	// is typical for hosting Internet services."
	a, err := DefaultTier2Design().Availability()
	if err != nil {
		t.Fatal(err)
	}
	if a < Tier2Availability || a >= Tier3Availability {
		t.Errorf("tier-2 design availability = %.5f, want in [%.5f, %.5f)",
			a, Tier2Availability, Tier3Availability)
	}
	if got := ClassifyTier(a); got != Tier2 {
		t.Errorf("classified as %v, want tier-2", got)
	}
}

func TestClassifyTier(t *testing.T) {
	tests := []struct {
		a    float64
		want Tier
	}{
		{0.5, TierBelow1},
		{0.997, Tier1},
		{0.998, Tier2},
		{0.9999, Tier3},
		{0.99996, Tier4},
		{1.0, Tier4},
	}
	for _, tt := range tests {
		if got := ClassifyTier(tt.a); got != tt.want {
			t.Errorf("ClassifyTier(%v) = %v, want %v", tt.a, got, tt.want)
		}
	}
}

func TestTierString(t *testing.T) {
	for tier, want := range map[Tier]string{
		TierBelow1: "below-tier-1", Tier1: "tier-1", Tier2: "tier-2",
		Tier3: "tier-3", Tier4: "tier-4", Tier(42): "tier(42)",
	} {
		if tier.String() != want {
			t.Errorf("Tier.String() = %q, want %q", tier.String(), want)
		}
	}
}

func TestDowntimePerYear(t *testing.T) {
	// 99.741 % availability ≈ 22.7 hours of downtime per year.
	d := DowntimePerYear(Tier2Availability)
	if d < 22*time.Hour || d > 23*time.Hour {
		t.Errorf("tier-2 downtime = %v, want ~22.7h", d)
	}
	if DowntimePerYear(1) != 0 {
		t.Error("perfect availability should have zero downtime")
	}
	if DowntimePerYear(2) != 0 {
		t.Error("availability > 1 should clamp")
	}
	if DowntimePerYear(-1) != DowntimePerYear(0) {
		t.Error("availability < 0 should clamp")
	}
}

func TestTier2AvailabilityValidatesComponents(t *testing.T) {
	d := DefaultTier2Design()
	d.Utility.MTBF = 0
	if _, err := d.Availability(); err == nil {
		t.Error("invalid utility should propagate error")
	}
	d = DefaultTier2Design()
	d.UPSUnit.MTBF = 0
	if _, err := d.Availability(); err == nil {
		t.Error("invalid UPS should propagate error")
	}
	d = DefaultTier2Design()
	d.GenUnit.MTBF = 0
	if _, err := d.Availability(); err == nil {
		t.Error("invalid generator should propagate error")
	}
	d = DefaultTier2Design()
	d.Path[0].MTBF = 0
	if _, err := d.Availability(); err == nil {
		t.Error("invalid path component should propagate error")
	}
}
