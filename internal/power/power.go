// Package power models the data-center power distribution system of the
// paper's Figure 1: grid feed, transformer/switchgear, UPS, power
// distribution units (PDUs), and rack circuits, down to server leaves.
// Each tier has a loss model, a rated capacity, and (for the UPS) a surge
// limit; the tree reports critical power, total losses, per-node
// utilization and overloads, and supports power capping and
// oversubscription accounting ("the power capacity of a data center is
// primarily defined by the capability of the UPS system", §2.1).
package power

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Kind identifies the tier of a distribution node.
type Kind int

// Distribution tiers, outermost first (paper Figure 1).
const (
	KindFeed Kind = iota + 1 // utility feed + transformer + switchgear
	KindUPS
	KindPDU
	KindRack // rack-level circuit / rack PDU
)

// String renders the tier name.
func (k Kind) String() string {
	switch k {
	case KindFeed:
		return "feed"
	case KindUPS:
		return "ups"
	case KindPDU:
		return "pdu"
	case KindRack:
		return "rack"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// LossModel describes a tier's conversion/distribution losses as a
// function of loading, following the standard quadratic form: the input
// power needed to deliver output P on a device rated R is
//
//	P + R·(fixed + prop·u + sq·u²),  u = P/R.
//
// Fixed covers no-load losses (transformer magnetization, UPS
// electronics); Prop covers switching losses; Sq covers resistive (I²R)
// losses.
type LossModel struct {
	Fixed float64
	Prop  float64
	Sq    float64
}

// Loss evaluates the loss in watts for output watts out on rating rated.
func (m LossModel) Loss(out, rated float64) float64 {
	if rated <= 0 {
		return 0
	}
	u := out / rated
	return rated * (m.Fixed + m.Prop*u + m.Sq*u*u)
}

// Typical loss models per tier (double-conversion UPS ≈ 92–95 % efficient
// at high load, much worse when lightly loaded — one reason static
// overprovisioning is wasteful).
var (
	DefaultFeedLoss = LossModel{Fixed: 0.005, Prop: 0.010, Sq: 0.005}
	DefaultUPSLoss  = LossModel{Fixed: 0.020, Prop: 0.030, Sq: 0.020}
	DefaultPDULoss  = LossModel{Fixed: 0.005, Prop: 0.010, Sq: 0.010}
	DefaultRackLoss = LossModel{Fixed: 0.002, Prop: 0.005, Sq: 0.008}
)

// LoadFunc reports the instantaneous demand of a leaf load in watts.
type LoadFunc func() float64

// Node is one element of the distribution tree. Interior nodes aggregate
// children; leaf demand comes from Loads (e.g. server.Power closures).
type Node struct {
	name     string
	kind     Kind
	ratedW   float64
	surgeW   float64 // short-term ceiling (UPS surge withstand); 0 = ratedW
	loss     LossModel
	children []*Node
	loads    []LoadFunc
	capW     float64 // active power cap; 0 = uncapped
}

// NewNode builds a distribution node. ratedW must be positive.
func NewNode(name string, kind Kind, ratedW float64, loss LossModel) (*Node, error) {
	if ratedW <= 0 {
		return nil, fmt.Errorf("power: node %q rated %v W must be positive", name, ratedW)
	}
	return &Node{name: name, kind: kind, ratedW: ratedW, surgeW: ratedW, loss: loss}, nil
}

// SetSurge sets the short-term surge ceiling (≥ rated).
func (n *Node) SetSurge(w float64) error {
	if w < n.ratedW {
		return fmt.Errorf("power: surge %v below rating %v", w, n.ratedW)
	}
	n.surgeW = w
	return nil
}

// AddChild attaches a downstream distribution node.
func (n *Node) AddChild(c *Node) { n.children = append(n.children, c) }

// AddLoad attaches a leaf demand source.
func (n *Node) AddLoad(f LoadFunc) { n.loads = append(n.loads, f) }

// Name reports the node name.
func (n *Node) Name() string { return n.name }

// Kind reports the node tier.
func (n *Node) Kind() Kind { return n.kind }

// RatedW reports the node's rated capacity in watts.
func (n *Node) RatedW() float64 { return n.ratedW }

// SetCap sets a power cap in watts on this node's output (0 clears it).
// Capping is advisory at this layer: the flow report flags Capped nodes,
// and enforcement (throttling servers) is the macro layer's job — exactly
// the cyber-physical coordination the paper calls for.
func (n *Node) SetCap(w float64) { n.capW = w }

// Cap reports the active cap (0 = none).
func (n *Node) Cap() float64 { return n.capW }

// Flow is the evaluated power state of one node.
type Flow struct {
	Name string
	Kind Kind
	// OutW is the power delivered to children and loads.
	OutW float64
	// InW is the power drawn from upstream (OutW + LossW).
	InW float64
	// LossW is this node's conversion/distribution loss.
	LossW float64
	// Utilization is OutW / rated.
	Utilization float64
	// Overloaded marks output above the rating.
	Overloaded bool
	// SurgeExceeded marks output above even the surge ceiling.
	SurgeExceeded bool
	// CapExceeded marks output above an active cap.
	CapExceeded bool
	// Children holds the downstream flows.
	Children []Flow
}

// Evaluate computes the power flow for the subtree rooted at n.
func (n *Node) Evaluate() Flow {
	var out float64
	childFlows := make([]Flow, 0, len(n.children))
	for _, c := range n.children {
		cf := c.Evaluate()
		childFlows = append(childFlows, cf)
		out += cf.InW
	}
	for _, l := range n.loads {
		v := l()
		if v < 0 {
			v = 0
		}
		out += v
	}
	loss := n.loss.Loss(out, n.ratedW)
	f := Flow{
		Name:        n.name,
		Kind:        n.kind,
		OutW:        out,
		InW:         out + loss,
		LossW:       loss,
		Utilization: out / n.ratedW,
		Overloaded:  out > n.ratedW,
		Children:    childFlows,
	}
	f.SurgeExceeded = out > n.surgeW
	f.CapExceeded = n.capW > 0 && out > n.capW
	return f
}

// OutputW computes the power delivered by this node (Flow.OutW) without
// building the Flow report — the cheap read for control loops that only
// need the draw, e.g. per-rack cap enforcement.
func (n *Node) OutputW() float64 {
	var out float64
	for _, c := range n.children {
		co := c.OutputW()
		out += co + c.loss.Loss(co, c.ratedW)
	}
	for _, l := range n.loads {
		v := l()
		if v < 0 {
			v = 0
		}
		out += v
	}
	return out
}

// TotalLoss sums losses over the subtree.
func (f Flow) TotalLoss() float64 {
	total := f.LossW
	for _, c := range f.Children {
		total += c.TotalLoss()
	}
	return total
}

// CriticalPower is the power reaching the leaf loads ("useful work",
// paper §2.1): subtree output minus downstream distribution losses.
func (f Flow) CriticalPower() float64 {
	return f.OutW - f.childLosses()
}

func (f Flow) childLosses() float64 {
	var total float64
	for _, c := range f.Children {
		total += c.LossW + c.childLosses()
	}
	return total
}

// Violations collects the names of nodes that are overloaded, over surge,
// or over an active cap anywhere in the subtree.
func (f Flow) Violations() []string {
	var v []string
	if f.Overloaded {
		v = append(v, f.Name+":overload")
	}
	if f.SurgeExceeded {
		v = append(v, f.Name+":surge")
	}
	if f.CapExceeded {
		v = append(v, f.Name+":cap")
	}
	for _, c := range f.Children {
		v = append(v, c.Violations()...)
	}
	return v
}

// String renders the flow tree for logs.
func (f Flow) String() string {
	var b strings.Builder
	f.render(&b, 0)
	return b.String()
}

func (f Flow) render(b *strings.Builder, depth int) {
	fmt.Fprintf(b, "%s%s[%s] out=%.0fW in=%.0fW loss=%.0fW util=%.0f%%",
		strings.Repeat("  ", depth), f.Name, f.Kind, f.OutW, f.InW, f.LossW, f.Utilization*100)
	if f.Overloaded {
		b.WriteString(" OVERLOAD")
	}
	b.WriteByte('\n')
	for _, c := range f.Children {
		c.render(b, depth+1)
	}
}

// ErrNoNodes is returned when a topology builder receives no elements.
var ErrNoNodes = errors.New("power: topology needs at least one element")

// Topology is a convenience builder for the canonical Figure-1 tree:
// one feed, one or more UPS units, PDUs under each UPS, racks under each
// PDU.
type Topology struct {
	// Feed is the root node.
	Feed *Node
	// UPSes, PDUs, Racks index the tiers for direct access.
	UPSes []*Node
	PDUs  []*Node
	Racks []*Node
	// Oversubscription records the sizing factor the tree was built
	// with: 1.0 means every tier carries its children at worst case, >1
	// means upstream tiers are deliberately undersized (§3.1) and
	// overloads are an accepted operating risk rather than a physics
	// violation.
	Oversubscription float64
}

// TopologyConfig sizes a canonical tree.
type TopologyConfig struct {
	// UPSCount, PDUsPerUPS, RacksPerPDU shape the tree.
	UPSCount, PDUsPerUPS, RacksPerPDU int
	// RackRatedW is each rack circuit's rating; upstream tiers are
	// rated to carry their children at the given oversubscription
	// factor (1.0 = sized for worst case; >1 = oversubscribed, §3.1).
	RackRatedW float64
	// Oversubscription divides upstream ratings: a value of 1.25 means
	// each PDU is rated for only 1/1.25 of the sum of its rack ratings.
	Oversubscription float64
}

// NewTopology builds the canonical tree with default loss models.
func NewTopology(cfg TopologyConfig) (*Topology, error) {
	if cfg.UPSCount <= 0 || cfg.PDUsPerUPS <= 0 || cfg.RacksPerPDU <= 0 {
		return nil, ErrNoNodes
	}
	if cfg.RackRatedW <= 0 {
		return nil, fmt.Errorf("power: rack rating %v must be positive", cfg.RackRatedW)
	}
	if cfg.Oversubscription < 1 {
		return nil, fmt.Errorf("power: oversubscription %v must be >= 1", cfg.Oversubscription)
	}
	pduRated := cfg.RackRatedW * float64(cfg.RacksPerPDU) / cfg.Oversubscription
	upsRated := pduRated * float64(cfg.PDUsPerUPS) / cfg.Oversubscription
	feedRated := upsRated * float64(cfg.UPSCount) * 1.1 // feed headroom

	feed, err := NewNode("feed", KindFeed, feedRated, DefaultFeedLoss)
	if err != nil {
		return nil, err
	}
	topo := &Topology{Feed: feed, Oversubscription: cfg.Oversubscription}
	for u := 0; u < cfg.UPSCount; u++ {
		ups, err := NewNode(fmt.Sprintf("ups-%d", u), KindUPS, upsRated, DefaultUPSLoss)
		if err != nil {
			return nil, err
		}
		// UPS surge withstand: typically ~125 % briefly.
		if err := ups.SetSurge(upsRated * 1.25); err != nil {
			return nil, err
		}
		feed.AddChild(ups)
		topo.UPSes = append(topo.UPSes, ups)
		for p := 0; p < cfg.PDUsPerUPS; p++ {
			pdu, err := NewNode(fmt.Sprintf("pdu-%d-%d", u, p), KindPDU, pduRated, DefaultPDULoss)
			if err != nil {
				return nil, err
			}
			ups.AddChild(pdu)
			topo.PDUs = append(topo.PDUs, pdu)
			for r := 0; r < cfg.RacksPerPDU; r++ {
				rack, err := NewNode(fmt.Sprintf("rack-%d-%d-%d", u, p, r), KindRack, cfg.RackRatedW, DefaultRackLoss)
				if err != nil {
					return nil, err
				}
				pdu.AddChild(rack)
				topo.Racks = append(topo.Racks, rack)
			}
		}
	}
	return topo, nil
}

// HostableServers reports how many servers of the given peak wattage the
// UPS tier can host at worst case (every server at peak simultaneously) —
// the static sizing rule of §2.1 ("the maximum instantaneous power
// consumption from all servers allocated to each UPS unit determines how
// many servers can a data center host").
func (t *Topology) HostableServers(peakPerServerW float64) int {
	if peakPerServerW <= 0 {
		return 0
	}
	var capacity float64
	for _, u := range t.UPSes {
		capacity += u.RatedW()
	}
	// Discount downstream distribution losses at full load so the
	// counted servers actually fit: approximate with rack+PDU losses at
	// u=1.
	lossFrac := DefaultPDULoss.Fixed + DefaultPDULoss.Prop + DefaultPDULoss.Sq +
		DefaultRackLoss.Fixed + DefaultRackLoss.Prop + DefaultRackLoss.Sq
	usable := capacity / (1 + lossFrac)
	return int(math.Floor(usable / peakPerServerW))
}
