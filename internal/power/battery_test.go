package power

import (
	"math"
	"testing"
	"time"
)

func TestNewBatteryValidation(t *testing.T) {
	if _, err := NewBattery(0, 100, 0.9); err == nil {
		t.Error("zero capacity should error")
	}
	if _, err := NewBattery(1000, 0, 0.9); err == nil {
		t.Error("zero charge rate should error")
	}
	if _, err := NewBattery(1000, 100, 0); err == nil {
		t.Error("zero efficiency should error")
	}
	if _, err := NewBattery(1000, 100, 1.5); err == nil {
		t.Error("efficiency > 1 should error")
	}
}

func TestBatteryForAutonomy(t *testing.T) {
	// Size for 100 kW and 10 minutes; autonomy at that load must be
	// exactly 10 minutes.
	b, err := BatteryForAutonomy(100_000, 10*time.Minute, 0.92)
	if err != nil {
		t.Fatal(err)
	}
	got := b.Autonomy(100_000)
	if d := got - 10*time.Minute; d < -time.Second || d > time.Second {
		t.Errorf("autonomy = %v, want 10m", got)
	}
	// Lighter load → longer autonomy.
	if b.Autonomy(50_000) <= got {
		t.Error("autonomy not inversely related to load")
	}
	if !b.RideThrough(100_000, 9*time.Minute) {
		t.Error("should ride through a 9-minute outage")
	}
	if b.RideThrough(100_000, 11*time.Minute) {
		t.Error("should not ride through an 11-minute outage")
	}
	if _, err := BatteryForAutonomy(0, time.Minute, 0.9); err == nil {
		t.Error("zero load should error")
	}
	if _, err := BatteryForAutonomy(100, 0, 0.9); err == nil {
		t.Error("zero autonomy should error")
	}
}

func TestDischargeAndDepletion(t *testing.T) {
	b, err := BatteryForAutonomy(10_000, 10*time.Minute, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	covered, ok := b.Discharge(10_000, 4*time.Minute)
	if !ok || covered != 4*time.Minute {
		t.Fatalf("partial discharge: covered %v ok=%v", covered, ok)
	}
	if math.Abs(b.ChargeFraction()-0.6) > 1e-9 {
		t.Errorf("charge fraction = %v, want 0.6", b.ChargeFraction())
	}
	// Ask for more than remains: covers only the remaining 6 minutes.
	covered, ok = b.Discharge(10_000, 10*time.Minute)
	if ok {
		t.Error("over-long discharge reported ok")
	}
	if d := covered - 6*time.Minute; d < -time.Second || d > time.Second {
		t.Errorf("covered %v, want ~6m", covered)
	}
	if b.ChargeFraction() != 0 {
		t.Errorf("charge after depletion = %v", b.ChargeFraction())
	}
	if b.Depletions() != 1 || b.Cycles() != 2 {
		t.Errorf("cycles=%d depletions=%d", b.Cycles(), b.Depletions())
	}
	// Degenerate inputs are no-ops.
	if cov, ok := b.Discharge(0, time.Minute); !ok || cov != time.Minute {
		t.Error("zero-load discharge should be free")
	}
}

func TestRechargeRateLimitAndLosses(t *testing.T) {
	b, err := NewBattery(1_000_000, 10_000, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	b.Discharge(100_000, 8*time.Second) // drain 1e6 J at eff 0.8
	if b.ChargeFraction() != 0 {
		t.Fatalf("charge = %v, want 0", b.ChargeFraction())
	}
	// One minute at 10 kW puts back 600 kJ; grid draw includes losses.
	gridW := b.Recharge(time.Minute)
	if math.Abs(b.ChargeFraction()-0.6) > 1e-9 {
		t.Errorf("charge fraction = %v, want 0.6", b.ChargeFraction())
	}
	if math.Abs(gridW-12_500) > 1e-6 {
		t.Errorf("grid draw = %v W, want 12500 (10 kW / 0.8)", gridW)
	}
	// Top up the rest; near-full charging draws less than the rate cap
	// allows.
	b.Recharge(time.Minute)
	if got := b.Recharge(time.Minute); got >= 12_500 {
		t.Errorf("final top-up drew %v W, want below the cap", got)
	}
	if b.ChargeFraction() != 1 {
		t.Errorf("charge = %v, want full", b.ChargeFraction())
	}
	if b.Recharge(time.Minute) != 0 {
		t.Error("recharging a full battery should draw nothing")
	}
}

func TestOutageScenario(t *testing.T) {
	// §2.1 scenario: 200 kW critical load, 10-minute battery, generators
	// take 45 s to start — the battery must bridge the gap with margin.
	const loadW = 200_000
	b, err := BatteryForAutonomy(loadW, 10*time.Minute, 0.92)
	if err != nil {
		t.Fatal(err)
	}
	const genStart = 45 * time.Second
	covered, ok := b.Discharge(loadW, genStart)
	if !ok || covered != genStart {
		t.Fatalf("battery failed a 45s bridge: %v %v", covered, ok)
	}
	// Remaining autonomy still exceeds a second generator attempt.
	if b.Autonomy(loadW) < 8*time.Minute {
		t.Errorf("post-bridge autonomy %v too low", b.Autonomy(loadW))
	}
	// After grid return, recharging adds load the feed must carry.
	if gridW := b.Recharge(10 * time.Minute); gridW <= 0 {
		t.Error("recharge drew no grid power")
	}
}

func TestDischargePastEmpty(t *testing.T) {
	b, err := NewBattery(1000, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Empty the store mid-interval: partial coverage, one depletion.
	covered, ok := b.Discharge(100, 20*time.Second)
	if ok || covered != 10*time.Second {
		t.Fatalf("first over-discharge: covered %v ok %v, want 10s false", covered, ok)
	}
	if b.ChargeFraction() != 0 || b.Depletions() != 1 {
		t.Fatalf("charge %v depletions %d after emptying", b.ChargeFraction(), b.Depletions())
	}
	// Discharging the already-empty store covers nothing and counts
	// another depletion, never a negative charge.
	covered, ok = b.Discharge(100, 20*time.Second)
	if ok || covered != 0 {
		t.Fatalf("empty-store discharge: covered %v ok %v, want 0 false", covered, ok)
	}
	if b.ChargeFraction() != 0 || b.Depletions() != 2 {
		t.Fatalf("charge %v depletions %d after empty-store discharge", b.ChargeFraction(), b.Depletions())
	}
}

func TestDischargeDegenerateArguments(t *testing.T) {
	b, err := NewBattery(1000, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Zero load and zero dt are free: fully covered, no cycle counted.
	if covered, ok := b.Discharge(0, time.Minute); !ok || covered != time.Minute {
		t.Errorf("zero-load discharge: %v %v", covered, ok)
	}
	if covered, ok := b.Discharge(100, 0); !ok || covered != 0 {
		t.Errorf("zero-dt discharge: %v %v", covered, ok)
	}
	if b.Cycles() != 0 || b.ChargeFraction() != 1 {
		t.Errorf("degenerate discharges consumed charge: cycles %d frac %v",
			b.Cycles(), b.ChargeFraction())
	}
}

func TestRechargeWhileBridgingInterleave(t *testing.T) {
	// Alternating discharge and recharge ticks (the utility model's
	// recharge loop racing a fresh outage) must conserve energy and keep
	// the charge inside [0, capacity].
	b, err := NewBattery(10_000, 1_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		b.Discharge(500, 10*time.Second) // -5000 J
		b.Recharge(10 * time.Second)     // +min(10000, room) J
		if f := b.ChargeFraction(); f < 0 || f > 1 {
			t.Fatalf("iteration %d: charge fraction %v out of [0,1]", i, f)
		}
	}
	// The 1 kW charger outruns the 500 W drain, so the interleave must
	// end full, not drifting.
	if f := b.ChargeFraction(); f != 1 {
		t.Errorf("final charge fraction %v, want 1", f)
	}
	if b.Depletions() != 0 {
		t.Errorf("depletions %d during covered interleave", b.Depletions())
	}
}
