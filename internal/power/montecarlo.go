package power

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// SimulateAvailability validates the analytic tier model by failure
// injection: every component fails and repairs as an alternating renewal
// process (exponential times with its MTBF/MTTR), and the facility is up
// when the same structure function used by Tier2Design.Availability holds
// — (utility OR enough generators) AND enough UPS modules AND every
// series component. It returns the empirically observed availability over
// the simulated horizon.
func SimulateAvailability(d Tier2Design, horizon time.Duration, rng *sim.RNG) (float64, error) {
	if horizon <= 0 {
		return 0, fmt.Errorf("power: horizon %v must be positive", horizon)
	}
	type unit struct {
		mtbf, mttr float64 // seconds
		up         bool
	}
	mk := func(c Component) (*unit, error) {
		if c.MTBF <= 0 {
			return nil, fmt.Errorf("power: component %q MTBF must be positive", c.Name)
		}
		if c.MTTR < 0 {
			return nil, fmt.Errorf("power: component %q MTTR must be non-negative", c.Name)
		}
		return &unit{mtbf: c.MTBF.Seconds(), mttr: c.MTTR.Seconds(), up: true}, nil
	}

	var units []*unit
	add := func(c Component, n int) ([]*unit, error) {
		group := make([]*unit, 0, n)
		for i := 0; i < n; i++ {
			u, err := mk(c)
			if err != nil {
				return nil, err
			}
			units = append(units, u)
			group = append(group, u)
		}
		return group, nil
	}

	utility, err := add(d.Utility, 1)
	if err != nil {
		return 0, err
	}
	gens, err := add(d.GenUnit, d.GenHave)
	if err != nil {
		return 0, err
	}
	upses, err := add(d.UPSUnit, d.UPSHave)
	if err != nil {
		return 0, err
	}
	var series []*unit
	for _, c := range append(append([]Component{}, d.Path...), d.Mechanical...) {
		g, err := add(c, 1)
		if err != nil {
			return 0, err
		}
		series = append(series, g[0])
	}
	if d.GenNeed <= 0 || d.GenNeed > d.GenHave || d.UPSNeed <= 0 || d.UPSNeed > d.UPSHave {
		return 0, fmt.Errorf("power: invalid redundancy needs")
	}

	countUp := func(g []*unit) int {
		n := 0
		for _, u := range g {
			if u.up {
				n++
			}
		}
		return n
	}
	systemUp := func() bool {
		source := utility[0].up || countUp(gens) >= d.GenNeed
		if !source {
			return false
		}
		if countUp(upses) < d.UPSNeed {
			return false
		}
		for _, u := range series {
			if !u.up {
				return false
			}
		}
		return true
	}

	e := sim.NewEngine(rng.Int63())
	var upSeconds float64
	last := time.Duration(0)
	wasUp := systemUp()
	account := func(now time.Duration) {
		if wasUp {
			upSeconds += (now - last).Seconds()
		}
		last = now
		wasUp = systemUp()
	}
	var schedule func(u *unit)
	schedule = func(u *unit) {
		var wait float64
		if u.up {
			wait = rng.Exp(1 / u.mtbf)
		} else {
			wait = rng.Exp(1 / u.mttr)
		}
		e.ScheduleAfter(time.Duration(wait*float64(time.Second)), func(eng *sim.Engine) {
			account(eng.Now())
			u.up = !u.up
			wasUp = systemUp()
			schedule(u)
		})
	}
	for _, u := range units {
		schedule(u)
	}
	if err := e.Run(horizon); err != nil {
		return 0, err
	}
	account(horizon)
	return upSeconds / horizon.Seconds(), nil
}
