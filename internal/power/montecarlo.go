package power

import (
	"fmt"
	"math"
	"time"

	"repro/internal/sim"
)

// SimulateAvailability validates the analytic tier model by failure
// injection: every component fails and repairs as an alternating renewal
// process (exponential times with its MTBF/MTTR), and the facility is up
// when the same structure function used by Tier2Design.Availability holds
// — (utility OR enough generators) AND enough UPS modules AND every
// series component. It returns the empirically observed availability over
// the simulated horizon.
//
// The engine is constructed internally; callers that instrument their
// engines (probes, invariant checkers) should use SimulateAvailabilityOn
// so the renewal process runs on an engine they observe. The random
// stream is identical between the two forms: this wrapper burns one Int63
// draw on the engine seed exactly as the original implementation did.
func SimulateAvailability(d Tier2Design, horizon time.Duration, rng *sim.RNG) (float64, error) {
	return SimulateAvailabilityOn(sim.NewEngine(rng.Int63()), d, horizon, rng)
}

// SimulateAvailabilityOn runs the failure-injection simulation on a
// caller-supplied engine (which must be fresh: virtual time zero and no
// pending events), so harness probes and invariant checkers attached to
// the engine observe the run. All randomness comes from rng; the engine's
// own random source is untouched.
func SimulateAvailabilityOn(e *sim.Engine, d Tier2Design, horizon time.Duration, rng *sim.RNG) (float64, error) {
	if horizon <= 0 {
		return 0, fmt.Errorf("power: horizon %v must be positive", horizon)
	}
	type unit struct {
		mtbf, mttr float64 // seconds
		up         bool
	}
	mk := func(c Component) (*unit, error) {
		if c.MTBF <= 0 {
			return nil, fmt.Errorf("power: component %q MTBF must be positive", c.Name)
		}
		if c.MTTR < 0 {
			return nil, fmt.Errorf("power: component %q MTTR must be non-negative", c.Name)
		}
		u := &unit{mtbf: c.MTBF.Seconds(), mttr: c.MTTR.Seconds(), up: true}
		// A zero MTTR is valid (the analytic model treats it as a
		// perfectly-repaired component) but must not reach rng.Exp: an
		// infinite repair rate yields degenerate zero-delay events, so
		// the renewal process below special-cases it as instant repair.
		if r := 1 / u.mtbf; math.IsNaN(r) || math.IsInf(r, 0) || r <= 0 {
			return nil, fmt.Errorf("power: component %q failure rate %v is not usable", c.Name, r)
		}
		if u.mttr > 0 {
			if r := 1 / u.mttr; math.IsNaN(r) || math.IsInf(r, 0) || r <= 0 {
				return nil, fmt.Errorf("power: component %q repair rate %v is not usable", c.Name, r)
			}
		}
		return u, nil
	}

	var units []*unit
	add := func(c Component, n int) ([]*unit, error) {
		group := make([]*unit, 0, n)
		for i := 0; i < n; i++ {
			u, err := mk(c)
			if err != nil {
				return nil, err
			}
			units = append(units, u)
			group = append(group, u)
		}
		return group, nil
	}

	utility, err := add(d.Utility, 1)
	if err != nil {
		return 0, err
	}
	gens, err := add(d.GenUnit, d.GenHave)
	if err != nil {
		return 0, err
	}
	upses, err := add(d.UPSUnit, d.UPSHave)
	if err != nil {
		return 0, err
	}
	var series []*unit
	for _, c := range append(append([]Component{}, d.Path...), d.Mechanical...) {
		g, err := add(c, 1)
		if err != nil {
			return 0, err
		}
		series = append(series, g[0])
	}
	if d.GenNeed <= 0 || d.GenNeed > d.GenHave || d.UPSNeed <= 0 || d.UPSNeed > d.UPSHave {
		return 0, fmt.Errorf("power: invalid redundancy needs")
	}

	countUp := func(g []*unit) int {
		n := 0
		for _, u := range g {
			if u.up {
				n++
			}
		}
		return n
	}
	systemUp := func() bool {
		source := utility[0].up || countUp(gens) >= d.GenNeed
		if !source {
			return false
		}
		if countUp(upses) < d.UPSNeed {
			return false
		}
		for _, u := range series {
			if !u.up {
				return false
			}
		}
		return true
	}

	var upSeconds float64
	last := time.Duration(0)
	wasUp := systemUp()
	account := func(now time.Duration) {
		if wasUp {
			upSeconds += (now - last).Seconds()
		}
		last = now
		wasUp = systemUp()
	}
	var schedule func(u *unit)
	schedule = func(u *unit) {
		var wait float64
		if u.up {
			wait = rng.Exp(1 / u.mtbf)
		} else {
			wait = rng.Exp(1 / u.mttr)
		}
		// An exponential draw from a validated rate is finite and
		// non-negative; reject anything else rather than scheduling a
		// NaN/negative delay (which would panic the kernel) or an
		// overflowing one.
		if math.IsNaN(wait) || wait < 0 {
			panic(fmt.Sprintf("power: invalid renewal wait %v", wait))
		}
		if max := (horizon + time.Hour).Seconds(); wait > max {
			wait = max // beyond the horizon; the event never fires
		}
		e.ScheduleAfter(time.Duration(wait*float64(time.Second)), func(eng *sim.Engine) {
			account(eng.Now())
			if u.up && u.mttr == 0 {
				// Instant repair: the component fails and is restored
				// in zero time, contributing no downtime — without
				// this, a zero MTTR would feed rng.Exp an infinite
				// rate and storm the queue with zero-delay repairs.
				schedule(u)
				return
			}
			u.up = !u.up
			wasUp = systemUp()
			schedule(u)
		})
	}
	for _, u := range units {
		schedule(u)
	}
	if err := e.Run(horizon); err != nil {
		return 0, err
	}
	account(horizon)
	return upSeconds / horizon.Seconds(), nil
}
