package power

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestLossModel(t *testing.T) {
	m := LossModel{Fixed: 0.01, Prop: 0.02, Sq: 0.03}
	// At zero output only the fixed loss remains.
	if got := m.Loss(0, 1000); math.Abs(got-10) > 1e-9 {
		t.Errorf("no-load loss = %v, want 10", got)
	}
	// At full load all terms apply.
	if got := m.Loss(1000, 1000); math.Abs(got-60) > 1e-9 {
		t.Errorf("full-load loss = %v, want 60", got)
	}
	// Degenerate rating yields zero loss rather than NaN.
	if got := m.Loss(100, 0); got != 0 {
		t.Errorf("zero-rating loss = %v, want 0", got)
	}
}

func TestLossEfficiencyImprovesWithLoad(t *testing.T) {
	// The per-watt overhead of fixed losses shrinks as load grows — the
	// reason lightly-loaded (overprovisioned) facilities waste energy.
	m := DefaultUPSLoss
	effAt := func(u float64) float64 {
		out := u * 1000
		return out / (out + m.Loss(out, 1000))
	}
	if effAt(0.2) >= effAt(0.8) {
		t.Errorf("efficiency at 20%% (%v) not below efficiency at 80%% (%v)",
			effAt(0.2), effAt(0.8))
	}
}

func TestNodeValidation(t *testing.T) {
	if _, err := NewNode("x", KindPDU, 0, DefaultPDULoss); err == nil {
		t.Error("zero rating should error")
	}
	n, err := NewNode("x", KindUPS, 100, DefaultUPSLoss)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SetSurge(50); err == nil {
		t.Error("surge below rating should error")
	}
	if err := n.SetSurge(150); err != nil {
		t.Errorf("valid surge rejected: %v", err)
	}
}

// buildSmallTree returns feed -> ups -> pdu -> rack with one adjustable
// leaf load on the rack.
func buildSmallTree(t *testing.T, load *float64) (*Node, *Node) {
	t.Helper()
	feed, err := NewNode("feed", KindFeed, 100_000, DefaultFeedLoss)
	if err != nil {
		t.Fatal(err)
	}
	ups, err := NewNode("ups", KindUPS, 50_000, DefaultUPSLoss)
	if err != nil {
		t.Fatal(err)
	}
	pdu, err := NewNode("pdu", KindPDU, 20_000, DefaultPDULoss)
	if err != nil {
		t.Fatal(err)
	}
	rack, err := NewNode("rack", KindRack, 10_000, DefaultRackLoss)
	if err != nil {
		t.Fatal(err)
	}
	feed.AddChild(ups)
	ups.AddChild(pdu)
	pdu.AddChild(rack)
	rack.AddLoad(func() float64 { return *load })
	return feed, rack
}

func TestFlowConservation(t *testing.T) {
	// Input at every node equals output plus loss; output equals the
	// sum of child inputs — power is conserved through the tree.
	load := 5000.0
	feed, _ := buildSmallTree(t, &load)
	var verify func(f Flow)
	verify = func(f Flow) {
		if math.Abs(f.InW-(f.OutW+f.LossW)) > 1e-9 {
			t.Errorf("%s: in %v != out %v + loss %v", f.Name, f.InW, f.OutW, f.LossW)
		}
		var childIn float64
		for _, c := range f.Children {
			childIn += c.InW
			verify(c)
		}
		if len(f.Children) > 0 && math.Abs(f.OutW-childIn) > 1e-9 {
			t.Errorf("%s: out %v != child inputs %v", f.Name, f.OutW, childIn)
		}
	}
	verify(feed.Evaluate())
}

func TestFlowConservationProperty(t *testing.T) {
	check := func(raw float64) bool {
		load := math.Abs(math.Mod(raw, 1e4))
		if math.IsNaN(load) {
			return true
		}
		feed, err := NewNode("feed", KindFeed, 100_000, DefaultFeedLoss)
		if err != nil {
			return false
		}
		rack, err := NewNode("rack", KindRack, 10_000, DefaultRackLoss)
		if err != nil {
			return false
		}
		feed.AddChild(rack)
		rack.AddLoad(func() float64 { return load })
		f := feed.Evaluate()
		// Total input covers the leaf demand plus all losses.
		return math.Abs(f.InW-(load+f.TotalLoss())) < 1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCriticalPower(t *testing.T) {
	load := 5000.0
	feed, _ := buildSmallTree(t, &load)
	f := feed.Evaluate()
	// Critical power as seen at the feed is the leaf demand: subtree
	// output minus downstream losses.
	if math.Abs(f.CriticalPower()-load) > 1e-6 {
		t.Errorf("critical power = %v, want %v", f.CriticalPower(), load)
	}
	if f.InW <= load {
		t.Error("feed input should exceed critical power (losses)")
	}
}

func TestNegativeLoadClamped(t *testing.T) {
	rack, err := NewNode("rack", KindRack, 1000, DefaultRackLoss)
	if err != nil {
		t.Fatal(err)
	}
	rack.AddLoad(func() float64 { return -500 })
	f := rack.Evaluate()
	if f.OutW != 0 {
		t.Errorf("negative load leaked: out = %v", f.OutW)
	}
}

func TestOverloadSurgeCapFlags(t *testing.T) {
	load := 0.0
	_, rack := buildSmallTree(t, &load)
	if err := rack.SetSurge(12_000); err != nil {
		t.Fatal(err)
	}
	rack.SetCap(8000)

	load = 7000 // below everything
	f := rack.Evaluate()
	if f.Overloaded || f.SurgeExceeded || f.CapExceeded {
		t.Errorf("flags at 7kW: %+v", f)
	}
	load = 9000 // above cap only
	f = rack.Evaluate()
	if !f.CapExceeded || f.Overloaded {
		t.Errorf("flags at 9kW: %+v", f)
	}
	load = 11_000 // above rating, below surge
	f = rack.Evaluate()
	if !f.Overloaded || f.SurgeExceeded {
		t.Errorf("flags at 11kW: %+v", f)
	}
	load = 13_000 // beyond surge
	f = rack.Evaluate()
	if !f.SurgeExceeded {
		t.Errorf("flags at 13kW: %+v", f)
	}
	v := f.Violations()
	joined := strings.Join(v, ",")
	if !strings.Contains(joined, "rack:overload") || !strings.Contains(joined, "rack:surge") || !strings.Contains(joined, "rack:cap") {
		t.Errorf("violations = %v", v)
	}
	rack.SetCap(0)
	if rack.Cap() != 0 {
		t.Error("cap not cleared")
	}
}

func TestViolationsPropagateUpward(t *testing.T) {
	load := 60_000.0 // exceeds the 50 kW UPS
	feed, _ := buildSmallTree(t, &load)
	f := feed.Evaluate()
	found := false
	for _, v := range f.Violations() {
		if strings.HasPrefix(v, "ups:") {
			found = true
		}
	}
	if !found {
		t.Errorf("UPS overload not reported: %v", f.Violations())
	}
}

func TestTopologyShape(t *testing.T) {
	topo, err := NewTopology(TopologyConfig{
		UPSCount:         2,
		PDUsPerUPS:       3,
		RacksPerPDU:      4,
		RackRatedW:       10_000,
		Oversubscription: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.UPSes) != 2 || len(topo.PDUs) != 6 || len(topo.Racks) != 24 {
		t.Fatalf("tree shape: %d UPS, %d PDU, %d racks", len(topo.UPSes), len(topo.PDUs), len(topo.Racks))
	}
	// With no oversubscription each PDU is rated for its racks.
	if topo.PDUs[0].RatedW() != 40_000 {
		t.Errorf("PDU rating = %v, want 40000", topo.PDUs[0].RatedW())
	}
	if topo.UPSes[0].RatedW() != 120_000 {
		t.Errorf("UPS rating = %v, want 120000", topo.UPSes[0].RatedW())
	}
}

func TestTopologyOversubscriptionShrinksUpstream(t *testing.T) {
	base, err := NewTopology(TopologyConfig{
		UPSCount: 1, PDUsPerUPS: 2, RacksPerPDU: 2,
		RackRatedW: 10_000, Oversubscription: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	over, err := NewTopology(TopologyConfig{
		UPSCount: 1, PDUsPerUPS: 2, RacksPerPDU: 2,
		RackRatedW: 10_000, Oversubscription: 1.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if over.PDUs[0].RatedW() >= base.PDUs[0].RatedW() {
		t.Error("oversubscription did not shrink PDU rating")
	}
	if over.UPSes[0].RatedW() >= base.UPSes[0].RatedW() {
		t.Error("oversubscription did not shrink UPS rating")
	}
}

func TestTopologyValidation(t *testing.T) {
	if _, err := NewTopology(TopologyConfig{}); err == nil {
		t.Error("empty config should error")
	}
	if _, err := NewTopology(TopologyConfig{UPSCount: 1, PDUsPerUPS: 1, RacksPerPDU: 1, RackRatedW: 0, Oversubscription: 1}); err == nil {
		t.Error("zero rack rating should error")
	}
	if _, err := NewTopology(TopologyConfig{UPSCount: 1, PDUsPerUPS: 1, RacksPerPDU: 1, RackRatedW: 100, Oversubscription: 0.5}); err == nil {
		t.Error("oversubscription < 1 should error")
	}
}

func TestHostableServers(t *testing.T) {
	topo, err := NewTopology(TopologyConfig{
		UPSCount: 1, PDUsPerUPS: 1, RacksPerPDU: 10,
		RackRatedW: 10_000, Oversubscription: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := topo.HostableServers(300)
	// 100 kW UPS / 300 W servers = 333 before losses; losses trim ~4 %.
	if n < 300 || n > 333 {
		t.Errorf("hostable servers = %d, want ~320", n)
	}
	if topo.HostableServers(0) != 0 {
		t.Error("zero-wattage servers should host 0")
	}
}

func TestFlowString(t *testing.T) {
	load := 12_000.0 // overload the 10 kW rack
	feed, _ := buildSmallTree(t, &load)
	s := feed.Evaluate().String()
	if !strings.Contains(s, "feed[feed]") || !strings.Contains(s, "OVERLOAD") {
		t.Errorf("flow string missing content:\n%s", s)
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{KindFeed: "feed", KindUPS: "ups", KindPDU: "pdu", KindRack: "rack", Kind(99): "kind(99)"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}
