package power

import (
	"fmt"
	"math"
	"time"
)

// Component is a repairable infrastructure element characterized by its
// mean time between failures and mean time to repair. Steady-state
// availability is MTBF / (MTBF + MTTR).
type Component struct {
	// Name identifies the component in reports.
	Name string
	// MTBF is the mean time between failures.
	MTBF time.Duration
	// MTTR is the mean time to repair.
	MTTR time.Duration
}

// Availability returns the steady-state availability in [0,1].
func (c Component) Availability() (float64, error) {
	if c.MTBF <= 0 {
		return 0, fmt.Errorf("power: component %q MTBF %v must be positive", c.Name, c.MTBF)
	}
	if c.MTTR < 0 {
		return 0, fmt.Errorf("power: component %q MTTR %v must be non-negative", c.Name, c.MTTR)
	}
	return float64(c.MTBF) / float64(c.MTBF+c.MTTR), nil
}

// SeriesAvailability combines elements that must all be up (a single
// distribution path): the product of availabilities.
func SeriesAvailability(as ...float64) (float64, error) {
	prod := 1.0
	for i, a := range as {
		// NaN fails every comparison, so reject it explicitly.
		if math.IsNaN(a) || a < 0 || a > 1 {
			return 0, fmt.Errorf("power: availability[%d] = %v out of [0,1]", i, a)
		}
		prod *= a
	}
	return prod, nil
}

// RedundantAvailability returns the probability that at least `need` of
// `have` independent identical units (each with availability a) are up —
// the N+1 capacity-redundancy model of tier-2 facilities.
func RedundantAvailability(a float64, need, have int) (float64, error) {
	if math.IsNaN(a) || a < 0 || a > 1 {
		return 0, fmt.Errorf("power: availability %v out of [0,1]", a)
	}
	if need <= 0 || have < need {
		return 0, fmt.Errorf("power: need %d of %d units invalid", need, have)
	}
	var p float64
	for k := need; k <= have; k++ {
		p += binomialPMF(have, k, a)
	}
	return math.Min(1, p), nil
}

func binomialPMF(n, k int, p float64) float64 {
	// Use logs for numerical robustness at large n.
	logC := lgamma(float64(n+1)) - lgamma(float64(k+1)) - lgamma(float64(n-k+1))
	if p == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p == 1 {
		if k == n {
			return 1
		}
		return 0
	}
	return math.Exp(logC + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p))
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// Tier classifies facility availability per the Uptime Institute bands
// the paper cites ([6]: "a tier-2 data center, providing 99.741%
// availability, is typical for hosting Internet services").
type Tier int

// Uptime Institute tier levels.
const (
	TierBelow1 Tier = iota
	Tier1           // 99.671 %
	Tier2           // 99.741 %
	Tier3           // 99.982 %
	Tier4           // 99.995 %
)

// String renders the tier.
func (t Tier) String() string {
	switch t {
	case TierBelow1:
		return "below-tier-1"
	case Tier1:
		return "tier-1"
	case Tier2:
		return "tier-2"
	case Tier3:
		return "tier-3"
	case Tier4:
		return "tier-4"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// Tier availability thresholds (fractions).
const (
	Tier1Availability = 0.99671
	Tier2Availability = 0.99741
	Tier3Availability = 0.99982
	Tier4Availability = 0.99995
)

// ClassifyTier maps an availability to the highest tier whose threshold
// it meets.
func ClassifyTier(a float64) Tier {
	switch {
	case a >= Tier4Availability:
		return Tier4
	case a >= Tier3Availability:
		return Tier3
	case a >= Tier2Availability:
		return Tier2
	case a >= Tier1Availability:
		return Tier1
	default:
		return TierBelow1
	}
}

// Tier2Design is the canonical tier-2 facility of §2.1: redundant (N+1)
// UPS and generator capacity, but a single distribution path.
type Tier2Design struct {
	// Path is the non-redundant series chain (switchgear, distribution
	// panels, PDU transformers, wiring).
	Path []Component
	// Mechanical is the series cooling chain (CRAC, chilled water).
	Mechanical []Component
	// UPSUnit is one UPS module; UPSNeed of UPSHave must be up.
	UPSUnit          Component
	UPSNeed, UPSHave int
	// GenUnit is one generator; GenNeed of GenHave must be up when the
	// utility fails. Utility is the grid feed itself.
	GenUnit          Component
	GenNeed, GenHave int
	Utility          Component
}

// DefaultTier2Design uses component reliability figures typical of the
// facilities literature, calibrated so the composite lands in the tier-2
// band (~99.741 %).
func DefaultTier2Design() Tier2Design {
	const h = time.Hour
	return Tier2Design{
		Path: []Component{
			{Name: "switchgear", MTBF: 80_000 * h, MTTR: 24 * h},
			{Name: "distribution-panel", MTBF: 60_000 * h, MTTR: 12 * h},
			{Name: "pdu-transformer", MTBF: 50_000 * h, MTTR: 24 * h},
		},
		Mechanical: []Component{
			{Name: "crac-plant", MTBF: 20_000 * h, MTTR: 16 * h},
			{Name: "chilled-water", MTBF: 35_000 * h, MTTR: 20 * h},
		},
		UPSUnit: Component{Name: "ups-module", MTBF: 8_000 * h, MTTR: 48 * h},
		UPSNeed: 1, UPSHave: 2,
		GenUnit: Component{Name: "generator", MTBF: 2_000 * h, MTTR: 24 * h},
		GenNeed: 1, GenHave: 2,
		Utility: Component{Name: "utility-feed", MTBF: 1_500 * h, MTTR: 4 * h},
	}
}

// Availability computes the design's composite availability. Power source
// is available when the utility is up OR enough generators are up (the
// UPS rides through the transfer); the source, UPS bank, path, and
// mechanical plant are in series.
func (d Tier2Design) Availability() (float64, error) {
	aUtility, err := d.Utility.Availability()
	if err != nil {
		return 0, err
	}
	aGenUnit, err := d.GenUnit.Availability()
	if err != nil {
		return 0, err
	}
	aGens, err := RedundantAvailability(aGenUnit, d.GenNeed, d.GenHave)
	if err != nil {
		return 0, err
	}
	// Utility in parallel with the generator bank.
	aSource := 1 - (1-aUtility)*(1-aGens)

	aUPSUnit, err := d.UPSUnit.Availability()
	if err != nil {
		return 0, err
	}
	aUPS, err := RedundantAvailability(aUPSUnit, d.UPSNeed, d.UPSHave)
	if err != nil {
		return 0, err
	}

	series := []float64{aSource, aUPS}
	for _, c := range append(append([]Component{}, d.Path...), d.Mechanical...) {
		a, err := c.Availability()
		if err != nil {
			return 0, err
		}
		series = append(series, a)
	}
	return SeriesAvailability(series...)
}

// DowntimePerYear converts an availability into expected downtime per
// year.
func DowntimePerYear(a float64) time.Duration {
	if a < 0 {
		a = 0
	}
	if a > 1 {
		a = 1
	}
	return time.Duration((1 - a) * 365.25 * 24 * float64(time.Hour))
}
