package power

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestSimulateAvailabilityMatchesAnalytic(t *testing.T) {
	d := DefaultTier2Design()
	analytic, err := d.Availability()
	if err != nil {
		t.Fatal(err)
	}
	// 200 simulated years of failure injection.
	const years = 200
	sim200, err := SimulateAvailability(d, years*365*24*time.Hour, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	// Unavailability is the sensitive quantity (~0.24 %); demand
	// agreement within 25 % relative.
	ua, us := 1-analytic, 1-sim200
	if math.Abs(us-ua)/ua > 0.25 {
		t.Errorf("simulated unavailability %.5f vs analytic %.5f (>25%% apart)", us, ua)
	}
	// And the simulated system is classified the same tier.
	if ClassifyTier(sim200) != ClassifyTier(analytic) {
		t.Errorf("tier mismatch: simulated %v vs analytic %v",
			ClassifyTier(sim200), ClassifyTier(analytic))
	}
}

func TestSimulateAvailabilityRedundancyHelps(t *testing.T) {
	// Removing the spare generator must hurt empirically too.
	const years = 100
	withSpare := DefaultTier2Design()
	noSpare := DefaultTier2Design()
	noSpare.GenHave = 1

	a, err := SimulateAvailability(withSpare, years*365*24*time.Hour, sim.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateAvailability(noSpare, years*365*24*time.Hour, sim.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if b >= a {
		t.Errorf("dropping the spare generator did not reduce availability: %.5f vs %.5f", b, a)
	}
}

func TestSimulateAvailabilityValidation(t *testing.T) {
	d := DefaultTier2Design()
	if _, err := SimulateAvailability(d, 0, sim.NewRNG(1)); err == nil {
		t.Error("zero horizon should error")
	}
	bad := DefaultTier2Design()
	bad.Utility.MTBF = 0
	if _, err := SimulateAvailability(bad, time.Hour, sim.NewRNG(1)); err == nil {
		t.Error("invalid component should error")
	}
	bad = DefaultTier2Design()
	bad.GenNeed = 5
	if _, err := SimulateAvailability(bad, time.Hour, sim.NewRNG(1)); err == nil {
		t.Error("invalid redundancy should error")
	}
}

// TestSimulateAvailabilityZeroMTTR is the regression for the zero-MTTR
// bug: a component with MTTR == 0 passes validation but used to feed
// rng.Exp an infinite repair rate. Instant repair means the component can
// never be observed down, so it must not reduce availability at all.
func TestSimulateAvailabilityZeroMTTR(t *testing.T) {
	d := DefaultTier2Design()
	// A fragile series component (fails every ~6h) that repairs
	// instantly. Keep the rest of the design perfect-ish by comparing
	// against the same design without the component.
	d.Path = append(d.Path, Component{Name: "flaky-switch", MTBF: 6 * time.Hour, MTTR: 0})
	const horizon = 365 * 24 * time.Hour
	withFlaky, err := SimulateAvailability(d, horizon, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	base := DefaultTier2Design()
	baseA, err := SimulateAvailability(base, horizon, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	// Same seed, and the instantly-repaired component contributes no
	// downtime, so availability must not collapse: allow only ordinary
	// Monte-Carlo noise between the two runs.
	if math.Abs(withFlaky-baseA) > 0.01 {
		t.Errorf("instantly-repaired component moved availability: %.5f vs %.5f", withFlaky, baseA)
	}
}

// TestSimulateAvailabilityZeroMTTRNoEventStorm bounds the event count: a
// zero-MTTR component must cost one event per failure, not a zero-delay
// repair storm.
func TestSimulateAvailabilityZeroMTTRNoEventStorm(t *testing.T) {
	d := DefaultTier2Design()
	d.Path = append(d.Path, Component{Name: "flaky", MTBF: time.Hour, MTTR: 0})
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := SimulateAvailability(d, 30*24*time.Hour, sim.NewRNG(4)); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("SimulateAvailability did not finish; zero-MTTR event storm suspected")
	}
}
