package power

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestSimulateAvailabilityMatchesAnalytic(t *testing.T) {
	d := DefaultTier2Design()
	analytic, err := d.Availability()
	if err != nil {
		t.Fatal(err)
	}
	// 200 simulated years of failure injection.
	const years = 200
	sim200, err := SimulateAvailability(d, years*365*24*time.Hour, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	// Unavailability is the sensitive quantity (~0.24 %); demand
	// agreement within 25 % relative.
	ua, us := 1-analytic, 1-sim200
	if math.Abs(us-ua)/ua > 0.25 {
		t.Errorf("simulated unavailability %.5f vs analytic %.5f (>25%% apart)", us, ua)
	}
	// And the simulated system is classified the same tier.
	if ClassifyTier(sim200) != ClassifyTier(analytic) {
		t.Errorf("tier mismatch: simulated %v vs analytic %v",
			ClassifyTier(sim200), ClassifyTier(analytic))
	}
}

func TestSimulateAvailabilityRedundancyHelps(t *testing.T) {
	// Removing the spare generator must hurt empirically too.
	const years = 100
	withSpare := DefaultTier2Design()
	noSpare := DefaultTier2Design()
	noSpare.GenHave = 1

	a, err := SimulateAvailability(withSpare, years*365*24*time.Hour, sim.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateAvailability(noSpare, years*365*24*time.Hour, sim.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if b >= a {
		t.Errorf("dropping the spare generator did not reduce availability: %.5f vs %.5f", b, a)
	}
}

func TestSimulateAvailabilityValidation(t *testing.T) {
	d := DefaultTier2Design()
	if _, err := SimulateAvailability(d, 0, sim.NewRNG(1)); err == nil {
		t.Error("zero horizon should error")
	}
	bad := DefaultTier2Design()
	bad.Utility.MTBF = 0
	if _, err := SimulateAvailability(bad, time.Hour, sim.NewRNG(1)); err == nil {
		t.Error("invalid component should error")
	}
	bad = DefaultTier2Design()
	bad.GenNeed = 5
	if _, err := SimulateAvailability(bad, time.Hour, sim.NewRNG(1)); err == nil {
		t.Error("invalid redundancy should error")
	}
}
