// Request-level workload model: batched M/M/n-style arrivals aggregated
// per tick, so millions of users cost O(ticks) instead of O(requests).
//
// The fluid layer in this package answers "how much load"; this layer
// answers "how many users, of which kind, got what". Arrivals are carried
// as per-class user counts per decision tick (rate × dt), never as
// per-request events — the batching trick that keeps the paper's
// "millions of users" operating point cheap. Per-class latency is
// recovered analytically with the Erlang-C formula (internal/stats)
// instead of simulating queues, which is exact for the M/M/n steady
// state the batch represents.
package workload

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Class is a request service class. The three classes form the shedding
// ladder's priority order: Interactive is protected longest, Background
// is shed first.
type Class int

// The service classes, highest priority first.
const (
	// ClassInteractive is user-facing request/response traffic with a
	// tight latency SLO; it is never deferred.
	ClassInteractive Class = iota
	// ClassBatch is throughput-oriented work (index builds, encoding
	// jobs) that tolerates deferral to a backlog.
	ClassBatch
	// ClassBackground is best-effort work (crawlers, maintenance) that
	// is degraded and shed before anything else.
	ClassBackground
	// NumClasses is the number of service classes.
	NumClasses = 3
)

// String renders the class name.
func (c Class) String() string {
	switch c {
	case ClassInteractive:
		return "interactive"
	case ClassBatch:
		return "batch"
	case ClassBackground:
		return "background"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// shedOrder walks classes lowest priority first — the order the
// admission ladder sheds them under pressure.
var shedOrder = [NumClasses]Class{ClassBackground, ClassBatch, ClassInteractive}

// ClassConfig describes one service class's queueing behaviour and SLO.
type ClassConfig struct {
	// ServiceTime is the mean per-request service time S (1/μ). It
	// converts admitted user counts into offered load in
	// server-equivalents (Erlangs): λ·S.
	ServiceTime time.Duration
	// SLOWait is the Erlang-C mean-queueing-delay target; a tick whose
	// expected wait exceeds it is an SLO miss for the class.
	SLOWait time.Duration
	// Deferrable marks work that defers to a backlog instead of being
	// rejected when it cannot be admitted.
	Deferrable bool
	// DegradeCost is the fraction of the nominal per-request capacity a
	// degraded request consumes, in (0,1]. Degrading a class trades
	// service quality for admission headroom.
	DegradeCost float64
}

// problems appends every violation in this class config to dst, each
// prefixed for attribution in an aggregated error.
func (c ClassConfig) problems(prefix string, dst []string) []string {
	if c.ServiceTime <= 0 {
		dst = append(dst, fmt.Sprintf("%sservice time %v must be positive", prefix, c.ServiceTime))
	}
	if c.SLOWait < 0 {
		dst = append(dst, fmt.Sprintf("%sSLO wait %v must be non-negative", prefix, c.SLOWait))
	}
	if c.DegradeCost <= 0 || c.DegradeCost > 1 || math.IsNaN(c.DegradeCost) {
		dst = append(dst, fmt.Sprintf("%sdegrade cost %v out of (0,1]", prefix, c.DegradeCost))
	}
	return dst
}

// Validate checks one class configuration, reporting every violation in
// one aggregated error.
func (c ClassConfig) Validate() error {
	return problemsErr("invalid class config", c.problems("", nil))
}

// RequestClasses is the per-class configuration table.
type RequestClasses [NumClasses]ClassConfig

// DefaultRequestClasses is a typical interactive/batch/background split:
// short interactive requests with a tight wait SLO, heavier batch work
// that defers, and cheap best-effort background traffic.
func DefaultRequestClasses() RequestClasses {
	return RequestClasses{
		ClassInteractive: {
			ServiceTime: 20 * time.Millisecond,
			SLOWait:     40 * time.Millisecond,
			DegradeCost: 0.6,
		},
		ClassBatch: {
			ServiceTime: 250 * time.Millisecond,
			SLOWait:     2 * time.Second,
			Deferrable:  true,
			DegradeCost: 0.5,
		},
		ClassBackground: {
			ServiceTime: 80 * time.Millisecond,
			SLOWait:     time.Second,
			DegradeCost: 0.4,
		},
	}
}

// problems appends every violation across all classes to dst.
func (r RequestClasses) problems(dst []string) []string {
	for c := 0; c < NumClasses; c++ {
		dst = r[c].problems(fmt.Sprintf("%s: ", Class(c)), dst)
	}
	return dst
}

// Validate checks every class, reporting every violation across all
// classes in one aggregated error.
func (r RequestClasses) Validate() error {
	return problemsErr("invalid request classes", r.problems(nil))
}

// ClassMix splits an aggregate arrival series into per-class shares. The
// shares need not sum to one; Split normalizes. A zero share is a valid
// empty class (the generator simply routes no users there).
type ClassMix [NumClasses]float64

// DefaultClassMix is the share split used by the request-level
// experiments: mostly interactive traffic, a quarter batch, the rest
// background.
func DefaultClassMix() ClassMix {
	return ClassMix{ClassInteractive: 0.6, ClassBatch: 0.25, ClassBackground: 0.15}
}

// Validate checks the mix — non-negative shares with a positive sum —
// reporting every violation in one aggregated error.
func (m ClassMix) Validate() error {
	var problems []string
	var sum float64
	for c, s := range m {
		if s < 0 || math.IsNaN(s) {
			problems = append(problems, fmt.Sprintf("class %s share %v must be non-negative", Class(c), s))
		}
		sum += s
	}
	if !(sum > 0) {
		problems = append(problems, fmt.Sprintf("class mix shares sum to %v, need > 0", sum))
	}
	return problemsErr("invalid class mix", problems)
}

// problemsErr folds collected violations into one aggregated error in
// the cmd/dcsim flag-validation style, or nil when the list is empty.
func problemsErr(what string, problems []string) error {
	if len(problems) == 0 {
		return nil
	}
	return fmt.Errorf("workload: %s:\n  - %s", what, strings.Join(problems, "\n  - "))
}

// Split divides an aggregate user count over the classes proportionally
// to the shares, writing into dst. Allocation-free.
func (m ClassMix) Split(total float64, dst *[NumClasses]float64) {
	var sum float64
	for _, s := range m {
		sum += s
	}
	if sum <= 0 || total <= 0 {
		*dst = [NumClasses]float64{}
		return
	}
	for c := range dst {
		dst[c] = total * m[c] / sum
	}
}

// UsersPerTick batches an arrival rate (users/second) into the user
// count of one tick of length dt — the aggregation that replaces
// per-request events.
func UsersPerTick(rate float64, dt time.Duration) float64 {
	if rate <= 0 {
		return 0
	}
	return rate * dt.Seconds()
}
