package workload

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestSimulateMM1MatchesFluidModel(t *testing.T) {
	// The fluid QueueModel's R = S/(1−ρ) is the M/M/1 mean sojourn
	// time; the event-driven simulation must agree.
	const mu = 50.0 // 20 ms mean service
	q := QueueModel{ServiceTime: 20 * time.Millisecond, MaxResponse: time.Minute}
	for _, rho := range []float64{0.3, 0.6, 0.8} {
		lambda := rho * mu
		res, err := SimulateMM1(lambda, mu, 6*time.Hour, sim.NewRNG(int64(rho*100)))
		if err != nil {
			t.Fatal(err)
		}
		want := q.Response(rho)
		got := res.MeanResponse
		rel := math.Abs(float64(got-want)) / float64(want)
		if rel > 0.08 {
			t.Errorf("rho=%v: simulated mean %v vs fluid %v (%.1f%% apart)",
				rho, got, want, rel*100)
		}
		if math.Abs(res.MeanUtilization-rho) > 0.05 {
			t.Errorf("rho=%v: utilization %v", rho, res.MeanUtilization)
		}
		// M/M/1 sojourn is exponential: P95 ≈ 3·mean.
		ratio := float64(res.P95Response) / float64(res.MeanResponse)
		if ratio < 2.5 || ratio > 3.5 {
			t.Errorf("rho=%v: P95/mean = %v, want ~3 (exponential sojourn)", rho, ratio)
		}
		// Throughput ≈ lambda·horizon.
		wantN := lambda * (6 * time.Hour).Seconds()
		if math.Abs(float64(res.Completed)-wantN) > 0.05*wantN {
			t.Errorf("rho=%v: completed %d, want ~%.0f", rho, res.Completed, wantN)
		}
	}
}

func TestSimulateMM1Validation(t *testing.T) {
	rng := sim.NewRNG(1)
	if _, err := SimulateMM1(0, 1, time.Hour, rng); err == nil {
		t.Error("zero lambda should error")
	}
	if _, err := SimulateMM1(1, 0, time.Hour, rng); err == nil {
		t.Error("zero mu should error")
	}
	if _, err := SimulateMM1(1, 1, 0, rng); err == nil {
		t.Error("zero horizon should error")
	}
	// A horizon too short for any completion errors rather than lying.
	if _, err := SimulateMM1(0.0001, 0.0001, time.Millisecond, rng); err == nil {
		t.Error("no-completion run should error")
	}
}

func TestSimulateMM1Deterministic(t *testing.T) {
	a, err := SimulateMM1(30, 50, time.Hour, sim.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateMM1(30, 50, time.Hour, sim.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Completed != b.Completed || a.MeanResponse != b.MeanResponse {
		t.Error("same seed produced different queue runs")
	}
}
