package workload

import (
	"math"
	"testing"
	"time"
)

// FuzzAdmissionTick throws arbitrary class populations, capacities, and
// Qmin knobs at the admission controller and asserts the structural
// guarantees: no NaN or negative counts, per-tick conservation
// (admitted + rejected + deferred == offered), Q in [0,1], and the
// cumulative invariants after a short multi-tick run with backlog
// carryover. Registered in the CI fuzz-smoke job.
func FuzzAdmissionTick(f *testing.F) {
	f.Add(60000.0, 12000.0, 6000.0, 40.0, 0.5, 1e6, 0)
	f.Add(0.0, 0.0, 0.0, 0.0, 0.9, 0.0, 3)
	f.Add(1e9, 1e9, 1e9, 1.0, 0.1, 100.0, 1)
	f.Add(-5.0, math.NaN(), math.Inf(1), -3.0, 1.0, 1e3, 2)
	f.Fuzz(func(t *testing.T, i, b, g, capErl, qmin, maxBacklog float64, shed int) {
		cfg := DefaultAdmissionConfig()
		cfg.Qmin = clampFuzzF(qmin, 0.01, 1)
		cfg.MaxBacklog = clampFuzzF(maxBacklog, 0, 1e9)
		a, err := NewAdmission(cfg)
		if err != nil {
			t.Fatalf("sanitized config rejected: %v", err)
		}
		a.SetShedLevel(shed) // clamps internally; any int is legal
		fresh := [NumClasses]float64{i, b, g}
		const dt = time.Minute
		for tick := 0; tick < 3; tick++ {
			out := a.Tick(dt, &fresh, capErl)
			if out.Q < 0 || out.Q > 1 || math.IsNaN(out.Q) {
				t.Fatalf("tick %d: Q = %v out of [0,1]", tick, out.Q)
			}
			for c := 0; c < NumClasses; c++ {
				for _, v := range [...]float64{out.Offered[c], out.Admitted[c], out.Rejected[c], out.Deferred[c], out.Degraded[c]} {
					if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
						t.Fatalf("tick %d class %s: invalid count %v", tick, Class(c), v)
					}
				}
				got := out.Admitted[c] + out.Rejected[c] + out.Deferred[c]
				tol := 1e-6 * math.Max(1, out.Offered[c])
				if math.Abs(got-out.Offered[c]) > tol {
					t.Fatalf("tick %d class %s: conservation broken: %v+%v+%v != %v",
						tick, Class(c), out.Admitted[c], out.Rejected[c], out.Deferred[c], out.Offered[c])
				}
			}
			if err := a.CheckInvariants(time.Duration(tick) * dt); err != nil {
				t.Fatalf("tick %d: %v", tick, err)
			}
		}
	})
}

// clampFuzzF maps an arbitrary fuzzed float into [lo, hi], folding
// NaN/Inf to lo — the same sanitizing idiom as the trace fuzz targets.
func clampFuzzF(x, lo, hi float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return lo
	}
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
