// Closed-loop retry model: turned-away users come back. The admission
// controller in this package is open-loop — a rejected user vanishes.
// Real clients retry, and retries are what turn a brief capacity dip
// into a metastable overload: rejections breed retries, retries inflate
// offered load, the extra load breeds more rejections, and the system
// stays saturated long after the trigger clears (each turned-away
// attempt still burns a slice of capacity on connection setup, queueing,
// and error handling — the feedback that sustains the storm).
//
// RetryLoop wraps an Admission with:
//
//   - a per-class retry queue (fixed ring indexed by release tick, so a
//     tick stays O(classes·attempts) and allocation-free like
//     Admission.Tick);
//   - three client policies: naive immediate retry, capped exponential
//     backoff with deterministic jitter from a seed-forked RNG, and a
//     retry budget (token bucket) that throttles the retry *rate*;
//   - an admission-side circuit breaker (closed/open/half-open on
//     windowed rejection rate) whose open state fast-fails arrivals at
//     near-zero capacity cost, with recovery hysteresis: the pool must
//     stay healthy for RecoverTicks consecutive probe ticks before the
//     breaker closes and protective shedding releases.
//
// Conservation extends the admission identity: per tick,
//
//	fresh + retried + replayed == admitted + abandoned + to_retry + deferred
//
// and cumulatively every fresh arrival is completed (admitted and not
// re-queued by an SLO miss), abandoned (out of attempts or overflow), or
// still in flight (retry queue or deferral backlog). CheckInvariants
// asserts the cumulative form after every engine event when armed.
package workload

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/sim"
)

// RetryPolicy selects how turned-away users come back.
type RetryPolicy int

const (
	// RetryNaive retries every turned-away user on the very next tick —
	// the storm-prone client the paper's flash-crowd scenarios imply.
	RetryNaive RetryPolicy = iota
	// RetryBackoff spaces retries by capped exponential backoff
	// (BaseDelay·2^(n-1) up to MaxDelay) with deterministic jitter.
	RetryBackoff
	// RetryBudget is backoff plus a per-class token bucket: tokens
	// accrue at BudgetRatio per fresh arrival, and a retry only attempts
	// when a token covers it — the uncovered portion waits a full
	// MaxDelay instead of hammering the pool. The budget throttles the
	// retry rate; it never drops users by itself.
	RetryBudget
)

// String renders the policy name.
func (p RetryPolicy) String() string {
	switch p {
	case RetryNaive:
		return "naive"
	case RetryBackoff:
		return "backoff"
	case RetryBudget:
		return "budget"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// BreakerState is the admission-side circuit breaker's state.
type BreakerState int

const (
	// BreakerClosed passes arrivals through to the pool.
	BreakerClosed BreakerState = iota
	// BreakerOpen fast-fails every arrival at FastFailCostFrac — much
	// cheaper than rejecting them out of the pool — for OpenTicks.
	BreakerOpen
	// BreakerHalfOpen admits a ProbeFrac slice to test the water;
	// RecoverTicks consecutive healthy probes close the breaker, one
	// bad probe re-opens it (recovery hysteresis).
	BreakerHalfOpen
)

// String renders the breaker state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("breaker(%d)", int(s))
	}
}

// Compile-time bounds that keep the retry queue a fixed-size ring (no
// allocation on any tick path).
const (
	// MaxRetryAttempts bounds RetryConfig.MaxAttempts: how many times
	// one user can be turned away before abandoning for good.
	MaxRetryAttempts = 8
	// retryRingTicks is the retry ring size in ticks; backoff delays
	// saturate at retryRingTicks-1 ticks.
	retryRingTicks = 512
	// maxBreakerWindow bounds BreakerConfig.Window.
	maxBreakerWindow = 128
)

// BreakerConfig parameterizes the admission-side circuit breaker.
type BreakerConfig struct {
	// Enabled turns the breaker on.
	Enabled bool
	// Window is the rejection-rate window in ticks, in [1,128].
	Window int
	// TripRatio opens the breaker when the windowed fraction of
	// turned-away arrivals reaches it. In (0,1].
	TripRatio float64
	// MinVolume is the minimum windowed arrival mass before the ratio
	// is meaningful (no tripping on noise at idle).
	MinVolume float64
	// OpenTicks is how long the breaker holds open before probing.
	OpenTicks int
	// ProbeFrac is the arrival fraction admitted while half-open.
	// In (0,1].
	ProbeFrac float64
	// RecoverTicks is the recovery hysteresis: consecutive healthy
	// half-open ticks (pool rejection ratio at most TripRatio/2)
	// required before the breaker closes.
	RecoverTicks int
}

// DefaultBreakerConfig trips at 50 % rejections over a 10-tick window,
// holds open 10 ticks, and needs 5 clean probe ticks to close.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{
		Enabled:      true,
		Window:       10,
		TripRatio:    0.5,
		MinVolume:    1,
		OpenTicks:    10,
		ProbeFrac:    0.1,
		RecoverTicks: 5,
	}
}

// RetryConfig parameterizes the closed retry loop around an Admission.
type RetryConfig struct {
	// Policy selects the client retry behaviour.
	Policy RetryPolicy
	// MaxAttempts is how many times a user retries after being turned
	// away before abandoning, in [1, MaxRetryAttempts].
	MaxAttempts int
	// BaseDelay is the first backoff delay; MaxDelay caps the
	// exponential growth. Ignored by RetryNaive (always next tick).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// JitterFrac spreads each backoff delay uniformly over
	// [1-J, 1+J]·delay using the loop's forked RNG. In [0,1).
	JitterFrac float64
	// BudgetRatio is retry tokens earned per fresh arrival and
	// BudgetBurst the per-class bucket cap, both in users
	// (RetryBudget only).
	BudgetRatio float64
	BudgetBurst float64
	// SLORetryFrac is the fraction of admitted users in a tick that
	// missed the class SLO who retry anyway (timeouts re-sent). Their
	// first service was still paid for; goodput excludes them.
	SLORetryFrac float64
	// RejectCostFrac is the slice of a nominal service time one
	// pool-rejected attempt still burns (connection setup, queueing,
	// error path). This wasted work reduces the *next* tick's capacity
	// — the feedback that makes naive retries metastable.
	RejectCostFrac float64
	// FastFailCostFrac is the same cost for a breaker fast-fail; the
	// point of the breaker is that this is nearly free.
	FastFailCostFrac float64
	// MaxInRetry caps each class's queued retries in users; overflow
	// abandons so the queue cannot grow without bound.
	MaxInRetry float64
	// Breaker configures the admission-side circuit breaker.
	Breaker BreakerConfig
}

// DefaultRetryConfig is a typical client population under the given
// policy: up to 4 retries, 30 s base / 5 min cap backoff with 20 %
// jitter, a 10 % retry budget, and a quarter service time burned per
// turned-away attempt. The breaker ships disabled; enable it with
// DefaultBreakerConfig.
func DefaultRetryConfig(policy RetryPolicy) RetryConfig {
	return RetryConfig{
		Policy:           policy,
		MaxAttempts:      4,
		BaseDelay:        30 * time.Second,
		MaxDelay:         5 * time.Minute,
		JitterFrac:       0.2,
		BudgetRatio:      0.1,
		BudgetBurst:      1e4,
		SLORetryFrac:     0.05,
		RejectCostFrac:   0.25,
		FastFailCostFrac: 0.02,
		MaxInRetry:       1e7,
	}
}

// Validate checks the configuration, collecting every violation into
// one aggregated error (matching the cmd/dcsim flag-validation style)
// so a config with three problems surfaces all three at once.
func (c RetryConfig) Validate() error {
	var problems []string
	bad := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	switch c.Policy {
	case RetryNaive, RetryBackoff, RetryBudget:
	default:
		bad("unknown retry policy %v", c.Policy)
	}
	if c.MaxAttempts < 1 || c.MaxAttempts > MaxRetryAttempts {
		bad("max attempts %d out of [1,%d]", c.MaxAttempts, MaxRetryAttempts)
	}
	if c.Policy != RetryNaive {
		if c.BaseDelay <= 0 {
			bad("base delay %v must be positive", c.BaseDelay)
		}
		if c.MaxDelay < c.BaseDelay {
			bad("max delay %v must be at least base delay %v", c.MaxDelay, c.BaseDelay)
		}
	}
	if c.JitterFrac < 0 || c.JitterFrac >= 1 || math.IsNaN(c.JitterFrac) {
		bad("jitter fraction %v out of [0,1)", c.JitterFrac)
	}
	if c.Policy == RetryBudget {
		if c.BudgetRatio <= 0 || math.IsNaN(c.BudgetRatio) {
			bad("budget ratio %v must be positive", c.BudgetRatio)
		}
		if c.BudgetBurst <= 0 || math.IsNaN(c.BudgetBurst) {
			bad("budget burst %v must be positive", c.BudgetBurst)
		}
	}
	if c.SLORetryFrac < 0 || c.SLORetryFrac > 1 || math.IsNaN(c.SLORetryFrac) {
		bad("SLO retry fraction %v out of [0,1]", c.SLORetryFrac)
	}
	if c.RejectCostFrac < 0 || c.RejectCostFrac > 1 || math.IsNaN(c.RejectCostFrac) {
		bad("reject cost fraction %v out of [0,1]", c.RejectCostFrac)
	}
	if c.FastFailCostFrac < 0 || c.FastFailCostFrac > 1 || math.IsNaN(c.FastFailCostFrac) {
		bad("fast-fail cost fraction %v out of [0,1]", c.FastFailCostFrac)
	}
	if c.MaxInRetry <= 0 || math.IsNaN(c.MaxInRetry) {
		bad("retry queue cap %v must be positive", c.MaxInRetry)
	}
	if b := c.Breaker; b.Enabled {
		if b.Window < 1 || b.Window > maxBreakerWindow {
			bad("breaker window %d out of [1,%d]", b.Window, maxBreakerWindow)
		}
		if b.TripRatio <= 0 || b.TripRatio > 1 || math.IsNaN(b.TripRatio) {
			bad("breaker trip ratio %v out of (0,1]", b.TripRatio)
		}
		if b.MinVolume < 0 || math.IsNaN(b.MinVolume) {
			bad("breaker min volume %v must be non-negative", b.MinVolume)
		}
		if b.OpenTicks < 1 {
			bad("breaker open ticks %d must be at least 1", b.OpenTicks)
		}
		if b.ProbeFrac <= 0 || b.ProbeFrac > 1 || math.IsNaN(b.ProbeFrac) {
			bad("breaker probe fraction %v out of (0,1]", b.ProbeFrac)
		}
		if b.RecoverTicks < 1 {
			bad("breaker recover ticks %d must be at least 1", b.RecoverTicks)
		}
	}
	if len(problems) == 0 {
		return nil
	}
	return fmt.Errorf("workload: invalid retry config:\n  - %s", strings.Join(problems, "\n  - "))
}

// RetryOutcome is one closed-loop tick's user-visible result. Like
// TickOutcome, all fields are value arrays so the tick allocates
// nothing.
type RetryOutcome struct {
	// Pool is the inner admission tick over the gated arrivals (fresh +
	// due retries that passed the breaker, plus replayed backlog).
	Pool TickOutcome
	// Fresh is the sanitized external arrivals; Retried the due retry
	// re-arrivals that attempted this tick.
	Fresh   [NumClasses]float64
	Retried [NumClasses]float64
	// FastFailed counts arrivals the open/half-open breaker turned away
	// before they reached the pool.
	FastFailed [NumClasses]float64
	// ToRetry counts users entering the retry queue this tick;
	// Abandoned counts users giving up (out of attempts, or queue
	// overflow). SLORetried is the admitted-but-timed-out slice that
	// re-queued anyway.
	ToRetry    [NumClasses]float64
	Abandoned  [NumClasses]float64
	SLORetried [NumClasses]float64
	// GoodputUsers is admitted minus SLO-retried: users whose request
	// actually completed this tick.
	GoodputUsers float64
	// OfferedErl is the retry-inflated demand in server-equivalents —
	// the pool demand plus what the breaker fast-failed — which is what
	// capacity planning must see.
	OfferedErl float64
	// EffectiveCapacityErl is the capacity after subtracting the
	// previous tick's reject-processing waste; WastedErl is that
	// subtraction.
	EffectiveCapacityErl float64
	WastedErl            float64
	// Breaker is the breaker state after this tick.
	Breaker BreakerState
}

// RetryLoop closes the loop around an Admission. Like Admission it is
// single-threaded and allocation-free per tick; all state is fixed-size
// (the retry ring is retryRingTicks × NumClasses × MaxRetryAttempts
// float64 cohorts indexed by release tick and times-turned-away).
type RetryLoop struct {
	cfg     RetryConfig
	adm     *Admission
	classes RequestClasses
	rng     *sim.RNG

	// ring[i][c][t-1] holds class-c users turned away t times, released
	// when the cursor reaches i.
	ring    [retryRingTicks][NumClasses][MaxRetryAttempts]float64
	cursor  int
	inRetry [NumClasses]float64
	tokens  [NumClasses]float64

	// pendingWaste is the capacity (erlangs) next tick loses to this
	// tick's reject processing — lagged one tick to keep the tick
	// acyclic and deterministic.
	pendingWaste float64

	state     BreakerState
	openLeft  int
	healthy   int
	winArr    [maxBreakerWindow]float64
	winRej    [maxBreakerWindow]float64
	winSum    float64
	winRejSum float64
	winIdx    int
	trips     int64

	ticks         int64
	freshTot      [NumClasses]float64
	retriedTot    [NumClasses]float64
	admittedTot   [NumClasses]float64
	abandonedTot  [NumClasses]float64
	sloRetriedTot [NumClasses]float64
	goodputTot    float64
}

// NewRetryLoop wraps adm with a closed retry loop. rng seeds the
// backoff jitter (fork it from the engine stream, e.g.
// e.RNG().Fork("retry")); it may be nil only when JitterFrac is zero.
func NewRetryLoop(cfg RetryConfig, adm *Admission, rng *sim.RNG) (*RetryLoop, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if adm == nil {
		return nil, fmt.Errorf("workload: retry loop needs an admission controller")
	}
	if cfg.JitterFrac > 0 && rng == nil {
		return nil, fmt.Errorf("workload: jitter fraction %v needs an RNG (pass one or set JitterFrac to 0)", cfg.JitterFrac)
	}
	return &RetryLoop{cfg: cfg, adm: adm, classes: adm.Config().Classes, rng: rng}, nil
}

// Admission exposes the wrapped pool controller.
func (r *RetryLoop) Admission() *Admission { return r.adm }

// Config reports the configuration.
func (r *RetryLoop) Config() RetryConfig { return r.cfg }

// Ticks reports how many closed-loop ticks have run.
func (r *RetryLoop) Ticks() int64 { return r.ticks }

// State reports the breaker state.
func (r *RetryLoop) State() BreakerState { return r.state }

// Trips reports how many times the breaker opened (windowed trips,
// re-opens from a failed probe, and forced Trip calls).
func (r *RetryLoop) Trips() int64 { return r.trips }

// FreshUsers reports cumulative external arrivals across classes.
func (r *RetryLoop) FreshUsers() float64 { return sumClasses(&r.freshTot) }

// RetriedUsers reports cumulative retry re-arrivals across classes.
func (r *RetryLoop) RetriedUsers() float64 { return sumClasses(&r.retriedTot) }

// AbandonedUsers reports users that gave up for good.
func (r *RetryLoop) AbandonedUsers() float64 { return sumClasses(&r.abandonedTot) }

// GoodputUsers reports cumulative completed users (admitted and not
// re-queued by an SLO miss).
func (r *RetryLoop) GoodputUsers() float64 { return r.goodputTot }

// InRetry reports one class's users currently waiting to retry.
func (r *RetryLoop) InRetry(c Class) float64 { return r.inRetry[c] }

// InRetryTotal reports all users currently waiting to retry.
func (r *RetryLoop) InRetryTotal() float64 { return sumClasses(&r.inRetry) }

// RetryAmplification is total attempts over fresh arrivals,
// (fresh+retried)/fresh — 1.0 means nobody retried, 2.0 means the
// average user hit the front door twice. 1 before any traffic.
func (r *RetryLoop) RetryAmplification() float64 {
	fresh := r.FreshUsers()
	if fresh <= 0 {
		return 1
	}
	return (fresh + r.RetriedUsers()) / fresh
}

// Trip forces the breaker open for a full OpenTicks — the degrader's
// hook when an infrastructure fault (rack loss, capacity dip, UPS
// depletion) makes a rejection wave certain before the window sees it.
// No-op when the breaker is disabled.
func (r *RetryLoop) Trip() {
	if !r.cfg.Breaker.Enabled {
		return
	}
	r.open()
}

// open moves the breaker to open and resets the rate window.
func (r *RetryLoop) open() {
	r.state = BreakerOpen
	r.openLeft = r.cfg.Breaker.OpenTicks
	r.trips++
	r.resetWindow()
}

// close returns the breaker to closed with a fresh window.
func (r *RetryLoop) close() {
	r.state = BreakerClosed
	r.healthy = 0
	r.resetWindow()
}

func (r *RetryLoop) resetWindow() {
	for i := range r.winArr {
		r.winArr[i] = 0
		r.winRej[i] = 0
	}
	r.winSum, r.winRejSum = 0, 0
	r.winIdx = 0
}

// Tick runs one closed-loop decision period: release due retries, gate
// arrivals through the breaker, tick the wrapped pool against the
// waste-reduced capacity, and route everything turned away into the
// retry queue or abandonment. Allocation-free; panics on dt <= 0 like
// Admission.Tick.
func (r *RetryLoop) Tick(dt time.Duration, fresh *[NumClasses]float64, capacityErl float64) RetryOutcome {
	if dt <= 0 {
		panic(fmt.Sprintf("workload: retry tick dt %v must be positive", dt))
	}
	if capacityErl < 0 || math.IsNaN(capacityErl) {
		capacityErl = 0
	}
	if capacityErl > maxCapacityErl {
		capacityErl = maxCapacityErl
	}
	dtSec := dt.Seconds()
	var out RetryOutcome

	// Sanitize fresh arrivals exactly like the pool will, so the loop's
	// ledger and the pool's agree on what arrived.
	var fr [NumClasses]float64
	for c := 0; c < NumClasses; c++ {
		f := fresh[c]
		if f < 0 || math.IsNaN(f) {
			f = 0
		}
		if f > maxUsersPerTick {
			f = maxUsersPerTick
		}
		fr[c] = f
		r.freshTot[c] += f
	}
	out.Fresh = fr

	// Budget tokens accrue on fresh traffic only: retries never earn
	// the right to more retries.
	if r.cfg.Policy == RetryBudget {
		for c := 0; c < NumClasses; c++ {
			r.tokens[c] = math.Min(r.tokens[c]+fr[c]*r.cfg.BudgetRatio, r.cfg.BudgetBurst)
		}
	}

	// Release the cohorts due this tick. Under the budget policy only
	// the token-covered portion attempts now; the remainder re-queues a
	// full MaxDelay later without burning an attempt.
	slot := &r.ring[r.cursor]
	var attempted [NumClasses][MaxRetryAttempts]float64
	var retried [NumClasses]float64
	for c := 0; c < NumClasses; c++ {
		var due float64
		for t := 0; t < MaxRetryAttempts; t++ {
			due += slot[c][t]
		}
		if due <= 0 {
			continue
		}
		attemptFrac := 1.0
		if r.cfg.Policy == RetryBudget {
			spend := math.Min(due, r.tokens[c])
			r.tokens[c] -= spend
			attemptFrac = spend / due
		}
		requeue := 0
		if attemptFrac < 1 {
			requeue = r.delayTicks(dt, r.cfg.MaxDelay)
		}
		for t := 0; t < MaxRetryAttempts; t++ {
			amt := slot[c][t]
			slot[c][t] = 0
			if amt <= 0 {
				continue
			}
			try := amt * attemptFrac
			attempted[c][t] = try
			retried[c] += try
			r.inRetry[c] -= try
			if stay := amt - try; stay > 0 {
				r.ring[(r.cursor+requeue)%retryRingTicks][c][t] += stay
			}
		}
		if r.inRetry[c] < 0 {
			r.inRetry[c] = 0
		}
		r.retriedTot[c] += retried[c]
	}
	out.Retried = retried

	// Capacity after last tick's reject-processing waste.
	eff := capacityErl - r.pendingWaste
	if eff < 0 {
		eff = 0
	}
	out.EffectiveCapacityErl = eff
	out.WastedErl = capacityErl - eff

	// Breaker gate: open fast-fails everything, half-open probes a
	// slice, closed passes all.
	gate := 1.0
	if r.cfg.Breaker.Enabled {
		switch r.state {
		case BreakerOpen:
			gate = 0
		case BreakerHalfOpen:
			gate = r.cfg.Breaker.ProbeFrac
		}
	}
	var handed, fastFailed [NumClasses]float64
	for c := 0; c < NumClasses; c++ {
		arr := fr[c] + retried[c]
		handed[c] = arr * gate
		fastFailed[c] = arr - handed[c]
	}
	out.FastFailed = fastFailed

	// The pool tick. Its deferral backlog replays inside; read it first
	// so turned-away mass can be computed by exact conservation.
	var replay [NumClasses]float64
	for c := 0; c < NumClasses; c++ {
		replay[c] = r.adm.Backlog(Class(c))
	}
	out.Pool = r.adm.Tick(dt, &handed, eff)

	// Everything that arrived and neither landed in service nor in the
	// deferral backlog was turned away — pool rejections, breaker
	// fast-fails, and any mass the pool's hostile-input clamps dropped.
	var turnedAway [NumClasses]float64
	for c := 0; c < NumClasses; c++ {
		ta := fr[c] + retried[c] + replay[c] - out.Pool.Admitted[c] - out.Pool.Deferred[c]
		if ta < 0 {
			ta = 0
		}
		turnedAway[c] = ta
	}

	// Admitted-but-late users that retry anyway (request timeouts).
	var sloRetry [NumClasses]float64
	if r.cfg.SLORetryFrac > 0 {
		for c := 0; c < NumClasses; c++ {
			if out.Pool.SLOMiss[c] {
				sloRetry[c] = out.Pool.Admitted[c] * r.cfg.SLORetryFrac
			}
		}
	}
	out.SLORetried = sloRetry

	// Route turned-away mass proportionally over this tick's arrival
	// cohorts (fresh and replayed backlog count as first-timers), then
	// into the queue or abandonment by attempt count.
	for c := 0; c < NumClasses; c++ {
		total := fr[c] + retried[c] + replay[c]
		if turnedAway[c] > 0 && total > 0 {
			frac := turnedAway[c] / total
			if frac > 1 {
				frac = 1
			}
			r.turnAway(c, 1, (fr[c]+replay[c])*frac, dt, &out)
			for t := 0; t < MaxRetryAttempts; t++ {
				r.turnAway(c, t+2, attempted[c][t]*frac, dt, &out)
			}
		}
		if sloRetry[c] > 0 {
			r.sloRetriedTot[c] += sloRetry[c]
			r.enqueue(c, 1, sloRetry[c], dt, &out)
		}
		r.admittedTot[c] += out.Pool.Admitted[c]
		g := out.Pool.Admitted[c] - sloRetry[c]
		if g > 0 {
			out.GoodputUsers += g
		}
	}
	r.goodputTot += out.GoodputUsers

	// Reject processing burns capacity next tick: full cost for pool
	// rejections, near-zero for breaker fast-fails.
	var waste float64
	for c := 0; c < NumClasses; c++ {
		st := r.classes[c].ServiceTime.Seconds()
		waste += (out.Pool.Rejected[c]*r.cfg.RejectCostFrac + fastFailed[c]*r.cfg.FastFailCostFrac) * st / dtSec
	}
	if waste > maxCapacityErl {
		waste = maxCapacityErl
	}
	r.pendingWaste = waste

	// Planners must see the retry-inflated demand, including what the
	// breaker turned away before the pool could count it.
	out.OfferedErl = out.Pool.DemandErl
	for c := 0; c < NumClasses; c++ {
		out.OfferedErl += fastFailed[c] / dtSec * r.classes[c].ServiceTime.Seconds()
	}

	if r.cfg.Breaker.Enabled {
		r.stepBreaker(&out, &fr, &retried, &replay, &turnedAway)
	}
	out.Breaker = r.state

	r.cursor = (r.cursor + 1) % retryRingTicks
	r.ticks++
	return out
}

// turnAway routes one rejected cohort: users turned away `times` times
// re-queue while attempts remain, abandon otherwise.
func (r *RetryLoop) turnAway(c, times int, amt float64, dt time.Duration, out *RetryOutcome) {
	if amt <= 0 {
		return
	}
	if times > r.cfg.MaxAttempts {
		r.abandon(c, amt, out)
		return
	}
	r.enqueue(c, times, amt, dt, out)
}

// enqueue parks a cohort in the ring at its policy delay, abandoning
// any overflow past the per-class queue cap.
func (r *RetryLoop) enqueue(c, times int, amt float64, dt time.Duration, out *RetryOutcome) {
	if amt <= 0 {
		return
	}
	if headroom := r.cfg.MaxInRetry - r.inRetry[c]; amt > headroom {
		if headroom < 0 {
			headroom = 0
		}
		r.abandon(c, amt-headroom, out)
		amt = headroom
		if amt <= 0 {
			return
		}
	}
	ticks := 1
	if r.cfg.Policy != RetryNaive {
		ticks = r.delayTicks(dt, r.backoffDelay(times))
	}
	r.ring[(r.cursor+ticks)%retryRingTicks][c][times-1] += amt
	r.inRetry[c] += amt
	out.ToRetry[c] += amt
}

// abandon gives a cohort up for good.
func (r *RetryLoop) abandon(c int, amt float64, out *RetryOutcome) {
	if amt <= 0 {
		return
	}
	r.abandonedTot[c] += amt
	out.Abandoned[c] += amt
}

// backoffDelay is the capped exponential: BaseDelay·2^(times-1), at
// most MaxDelay.
func (r *RetryLoop) backoffDelay(times int) time.Duration {
	d := r.cfg.BaseDelay << uint(times-1)
	if d <= 0 || d > r.cfg.MaxDelay {
		d = r.cfg.MaxDelay
	}
	return d
}

// delayTicks converts a delay to ring ticks, applying deterministic
// jitter from the forked RNG. Always in [1, retryRingTicks-1].
func (r *RetryLoop) delayTicks(dt, delay time.Duration) int {
	if j := r.cfg.JitterFrac; j > 0 && r.rng != nil {
		delay = time.Duration(float64(delay) * (1 - j + 2*j*r.rng.Float64()))
	}
	ticks := int((delay + dt - 1) / dt)
	if ticks < 1 {
		ticks = 1
	}
	if ticks > retryRingTicks-1 {
		ticks = retryRingTicks - 1
	}
	return ticks
}

// stepBreaker advances the breaker state machine after a tick.
func (r *RetryLoop) stepBreaker(out *RetryOutcome, fr, retried, replay, turnedAway *[NumClasses]float64) {
	b := r.cfg.Breaker
	var arrTot, taTot float64
	for c := 0; c < NumClasses; c++ {
		arrTot += fr[c] + retried[c] + replay[c]
		taTot += turnedAway[c]
	}
	switch r.state {
	case BreakerClosed:
		r.winSum += arrTot - r.winArr[r.winIdx]
		r.winRejSum += taTot - r.winRej[r.winIdx]
		if r.winSum < 0 {
			r.winSum = 0
		}
		if r.winRejSum < 0 {
			r.winRejSum = 0
		}
		r.winArr[r.winIdx] = arrTot
		r.winRej[r.winIdx] = taTot
		r.winIdx = (r.winIdx + 1) % b.Window
		if r.winSum >= b.MinVolume && r.winSum > 0 && r.winRejSum/r.winSum >= b.TripRatio {
			r.open()
		}
	case BreakerOpen:
		r.openLeft--
		if r.openLeft <= 0 {
			r.state = BreakerHalfOpen
			r.healthy = 0
		}
	case BreakerHalfOpen:
		// Judge the probe by the pool's own rejection ratio; an idle
		// probe (nothing offered) counts as healthy.
		var poolOff, poolRej float64
		for c := 0; c < NumClasses; c++ {
			poolOff += out.Pool.Offered[c]
			poolRej += out.Pool.Rejected[c]
		}
		if poolOff <= 0 || poolRej/poolOff <= b.TripRatio/2 {
			r.healthy++
			if r.healthy >= b.RecoverTicks {
				r.close()
			}
		} else {
			r.open()
		}
	}
}

// CheckInvariants implements invariant.Checkable: the closed-loop
// ledger must conserve — every fresh arrival is completed, abandoned,
// waiting to retry, or parked in the deferral backlog — with all counts
// finite, non-negative, and within their caps.
func (r *RetryLoop) CheckInvariants(now time.Duration) error {
	if r.state < BreakerClosed || r.state > BreakerHalfOpen {
		return fmt.Errorf("retry: breaker state %d invalid at %v", int(r.state), now)
	}
	for c := 0; c < NumClasses; c++ {
		cl := Class(c)
		for _, v := range [...]struct {
			name string
			val  float64
		}{
			{"fresh", r.freshTot[c]},
			{"retried", r.retriedTot[c]},
			{"admitted", r.admittedTot[c]},
			{"abandoned", r.abandonedTot[c]},
			{"slo-retried", r.sloRetriedTot[c]},
			{"in-retry", r.inRetry[c]},
			{"tokens", r.tokens[c]},
		} {
			if v.val < 0 || math.IsNaN(v.val) || math.IsInf(v.val, 0) {
				return fmt.Errorf("retry: %s %s count %v invalid at %v", cl, v.name, v.val, now)
			}
		}
		if r.cfg.Policy == RetryBudget && r.tokens[c] > r.cfg.BudgetBurst*(1+1e-9) {
			return fmt.Errorf("retry: %s tokens %v exceed burst %v at %v", cl, r.tokens[c], r.cfg.BudgetBurst, now)
		}
		if r.inRetry[c] > r.cfg.MaxInRetry*(1+1e-9) {
			return fmt.Errorf("retry: %s queue %v exceeds cap %v at %v", cl, r.inRetry[c], r.cfg.MaxInRetry, now)
		}
		want := r.freshTot[c]
		got := r.admittedTot[c] - r.sloRetriedTot[c] + r.abandonedTot[c] + r.inRetry[c] + r.adm.Backlog(cl)
		tol := 1e-6 * math.Max(1, want)
		if math.Abs(got-want) > tol {
			return fmt.Errorf("retry: %s conservation broken at %v: completed %v + abandoned %v + in-retry %v + backlog %v != fresh %v",
				cl, now, r.admittedTot[c]-r.sloRetriedTot[c], r.abandonedTot[c], r.inRetry[c], r.adm.Backlog(cl), want)
		}
	}
	return nil
}
