package workload

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func newTestRetry(t testing.TB, policy RetryPolicy, mutate ...func(*RetryConfig)) *RetryLoop {
	t.Helper()
	cfg := DefaultRetryConfig(policy)
	cfg.SLORetryFrac = 0
	for _, m := range mutate {
		m(&cfg)
	}
	adm, err := NewAdmission(DefaultAdmissionConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRetryLoop(cfg, adm, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// retryTickConserves asserts the closed-loop per-tick partition:
// fresh + retried + replayed backlog == admitted + deferred +
// (to-retry − slo-retried) + abandoned, with no negative or NaN counts.
func retryTickConserves(t *testing.T, out RetryOutcome) {
	t.Helper()
	for c := 0; c < NumClasses; c++ {
		for _, v := range []float64{
			out.Fresh[c], out.Retried[c], out.FastFailed[c],
			out.ToRetry[c], out.Abandoned[c], out.SLORetried[c],
		} {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("class %s: invalid count %v in %+v", Class(c), v, out)
			}
		}
		handed := out.Fresh[c] + out.Retried[c] - out.FastFailed[c]
		replay := out.Pool.Offered[c] - handed
		in := out.Fresh[c] + out.Retried[c] + replay
		outSum := out.Pool.Admitted[c] + out.Pool.Deferred[c] +
			(out.ToRetry[c] - out.SLORetried[c]) + out.Abandoned[c]
		tol := 1e-6 * math.Max(1, in)
		if math.Abs(in-outSum) > tol {
			t.Fatalf("class %s: closed-loop conservation broken: in %v != out %v (%+v)",
				Class(c), in, outSum, out)
		}
	}
}

func TestRetryConfigValidateAggregates(t *testing.T) {
	for _, p := range []RetryPolicy{RetryNaive, RetryBackoff, RetryBudget} {
		if err := DefaultRetryConfig(p).Validate(); err != nil {
			t.Errorf("default %v config invalid: %v", p, err)
		}
	}
	cfg := DefaultRetryConfig(RetryBudget)
	cfg.MaxAttempts = 0
	cfg.JitterFrac = 2
	cfg.BudgetRatio = -1
	cfg.MaxInRetry = 0
	err := cfg.Validate()
	if err == nil {
		t.Fatal("bad config accepted")
	}
	if n := strings.Count(err.Error(), "\n  - "); n != 4 {
		t.Errorf("aggregated error lists %d problems, want 4:\n%v", n, err)
	}
	cfg = DefaultRetryConfig(RetryNaive)
	cfg.Breaker = DefaultBreakerConfig()
	cfg.Breaker.Window = maxBreakerWindow + 1
	cfg.Breaker.TripRatio = 0
	if err := cfg.Validate(); err == nil || strings.Count(err.Error(), "\n  - ") != 2 {
		t.Errorf("breaker violations not aggregated: %v", err)
	}
}

func TestAdmissionConfigValidateAggregates(t *testing.T) {
	cfg := DefaultAdmissionConfig()
	cfg.Qmin = 0
	cfg.MaxBacklog = -1
	cfg.Classes[ClassBatch].ServiceTime = 0
	cfg.Classes[ClassBatch].DegradeCost = 2
	err := cfg.Validate()
	if err == nil {
		t.Fatal("bad config accepted")
	}
	if n := strings.Count(err.Error(), "\n  - "); n != 4 {
		t.Errorf("aggregated error lists %d problems, want 4:\n%v", n, err)
	}
	if !strings.Contains(err.Error(), "batch: ") {
		t.Errorf("class violations not attributed:\n%v", err)
	}
}

func TestRetryNaiveRetriesNextTick(t *testing.T) {
	r := newTestRetry(t, RetryNaive)
	fresh := [NumClasses]float64{1000, 0, 0}
	out := r.Tick(admDT, &fresh, 0) // zero capacity: all rejected
	retryTickConserves(t, out)
	if out.ToRetry[ClassInteractive] != 1000 {
		t.Fatalf("to-retry = %v, want 1000", out.ToRetry[ClassInteractive])
	}
	if r.InRetry(ClassInteractive) != 1000 {
		t.Fatalf("in-retry = %v, want 1000", r.InRetry(ClassInteractive))
	}
	var none [NumClasses]float64
	out = r.Tick(admDT, &none, 0)
	retryTickConserves(t, out)
	if out.Retried[ClassInteractive] != 1000 {
		t.Errorf("naive retry did not come back next tick: retried %v", out.Retried[ClassInteractive])
	}
	// Ample capacity: the whole cohort lands and the queue empties.
	out = r.Tick(admDT, &none, 1000)
	retryTickConserves(t, out)
	if out.Pool.Admitted[ClassInteractive] != 1000 {
		t.Errorf("recovered retry not admitted: %v", out.Pool.Admitted[ClassInteractive])
	}
	if r.InRetryTotal() != 0 {
		t.Errorf("queue not drained: %v", r.InRetryTotal())
	}
	if got := r.RetryAmplification(); math.Abs(got-3) > 1e-9 {
		t.Errorf("amplification = %v, want 3 (1000 fresh, 2000 retries)", got)
	}
}

func TestRetryBackoffDelaysGrow(t *testing.T) {
	r := newTestRetry(t, RetryBackoff, func(c *RetryConfig) {
		c.JitterFrac = 0
		c.BaseDelay = 2 * admDT
		c.MaxDelay = 8 * admDT
	})
	fresh := [NumClasses]float64{1000, 0, 0}
	var none [NumClasses]float64
	r.Tick(admDT, &fresh, 0)
	// First retry after BaseDelay = 2 ticks, second after 4 ticks.
	gaps := []int{2, 4}
	tick := 0
	for _, want := range gaps {
		for i := 1; i <= want; i++ {
			tick++
			out := r.Tick(admDT, &none, 0)
			retryTickConserves(t, out)
			got := out.Retried[ClassInteractive]
			if i < want && got != 0 {
				t.Fatalf("tick %d: early retry %v before %d-tick backoff", tick, got, want)
			}
			if i == want && got != 1000 {
				t.Fatalf("tick %d: retried %v, want 1000 after %d-tick backoff", tick, got, want)
			}
		}
	}
}

func TestRetryAbandonAfterMaxAttempts(t *testing.T) {
	r := newTestRetry(t, RetryNaive, func(c *RetryConfig) { c.MaxAttempts = 2 })
	fresh := [NumClasses]float64{500, 0, 0}
	var none [NumClasses]float64
	r.Tick(admDT, &fresh, 0)
	var abandoned float64
	for i := 0; i < 4; i++ {
		out := r.Tick(admDT, &none, 0)
		retryTickConserves(t, out)
		abandoned += out.Abandoned[ClassInteractive]
	}
	if r.InRetryTotal() != 0 {
		t.Errorf("queue still holds %v after attempts exhausted", r.InRetryTotal())
	}
	if math.Abs(abandoned-500) > 1e-9 || math.Abs(r.AbandonedUsers()-500) > 1e-9 {
		t.Errorf("abandoned %v (cumulative %v), want 500", abandoned, r.AbandonedUsers())
	}
	if err := r.CheckInvariants(0); err != nil {
		t.Error(err)
	}
}

func TestRetryBudgetThrottlesRetryRate(t *testing.T) {
	r := newTestRetry(t, RetryBudget, func(c *RetryConfig) {
		c.JitterFrac = 0
		c.BaseDelay = admDT
		c.MaxDelay = 4 * admDT
		c.BudgetRatio = 0.1
		c.BudgetBurst = 200
	})
	fresh := [NumClasses]float64{1000, 0, 0}
	for i := 0; i < 20; i++ {
		out := r.Tick(admDT, &fresh, 0)
		retryTickConserves(t, out)
		// Tokens accrue at 100/tick (capped at 200): the retry rate can
		// never exceed the burst even with thousands queued.
		if got := out.Retried[ClassInteractive]; got > 200+1e-9 {
			t.Fatalf("tick %d: retried %v exceeds token burst 200", i, got)
		}
	}
	if r.InRetryTotal() == 0 {
		t.Error("budget should be deferring a backlog of retries")
	}
	if err := r.CheckInvariants(0); err != nil {
		t.Error(err)
	}
}

func TestRetrySLOMissReenqueues(t *testing.T) {
	r := newTestRetry(t, RetryNaive, func(c *RetryConfig) { c.SLORetryFrac = 0.1 })
	// 20 erl of interactive on 11 servers: admitted but the wait blows
	// the 40 ms SLO (same operating point as TestAdmissionSLOMiss).
	r.Admission().SetShedLevel(0)
	fresh := [NumClasses]float64{60000, 0, 0}
	out := r.Tick(admDT, &fresh, 11)
	retryTickConserves(t, out)
	if !out.Pool.SLOMiss[ClassInteractive] {
		t.Fatalf("expected an SLO miss, wait %v", out.Pool.WaitSec[ClassInteractive])
	}
	want := out.Pool.Admitted[ClassInteractive] * 0.1
	if math.Abs(out.SLORetried[ClassInteractive]-want) > 1e-9 {
		t.Errorf("SLO-retried %v, want %v", out.SLORetried[ClassInteractive], want)
	}
	if out.GoodputUsers >= out.Pool.Admitted[ClassInteractive] {
		t.Errorf("goodput %v should exclude the SLO-retried slice of admitted %v",
			out.GoodputUsers, out.Pool.Admitted[ClassInteractive])
	}
	if err := r.CheckInvariants(0); err != nil {
		t.Error(err)
	}
}

func TestRetryBreakerTripsAndRecovers(t *testing.T) {
	r := newTestRetry(t, RetryNaive, func(c *RetryConfig) {
		c.Breaker = BreakerConfig{
			Enabled: true, Window: 5, TripRatio: 0.5, MinVolume: 1,
			OpenTicks: 3, ProbeFrac: 0.5, RecoverTicks: 2,
		}
	})
	fresh := [NumClasses]float64{1000, 0, 0}
	out := r.Tick(admDT, &fresh, 0) // total rejection trips immediately
	if out.Breaker != BreakerOpen {
		t.Fatalf("breaker %v after total rejection, want open", out.Breaker)
	}
	if r.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", r.Trips())
	}
	// Open: arrivals fast-fail without reaching the pool.
	for i := 0; i < 3; i++ {
		out = r.Tick(admDT, &fresh, 1000)
		retryTickConserves(t, out)
		if i < 2 && out.Breaker != BreakerOpen {
			t.Fatalf("open tick %d: breaker %v", i, out.Breaker)
		}
		if want := out.Fresh[ClassInteractive] + out.Retried[ClassInteractive]; out.FastFailed[ClassInteractive] != want {
			t.Fatalf("open tick %d: fast-failed %v, want all %v arrivals", i, out.FastFailed[ClassInteractive], want)
		}
	}
	if out.Breaker != BreakerHalfOpen {
		t.Fatalf("breaker %v after OpenTicks, want half-open", out.Breaker)
	}
	// Half-open probes against ample capacity: healthy ticks close it.
	out = r.Tick(admDT, &fresh, 1000)
	if out.Breaker != BreakerHalfOpen {
		t.Fatalf("breaker %v after one healthy probe, want half-open (hysteresis)", out.Breaker)
	}
	if out.FastFailed[ClassInteractive] <= 0 || out.Pool.Admitted[ClassInteractive] <= 0 {
		t.Fatalf("half-open should split arrivals: fast-failed %v admitted %v",
			out.FastFailed[ClassInteractive], out.Pool.Admitted[ClassInteractive])
	}
	out = r.Tick(admDT, &fresh, 1000)
	if out.Breaker != BreakerClosed {
		t.Fatalf("breaker %v after RecoverTicks healthy probes, want closed", out.Breaker)
	}
	// A bad probe re-opens: trip again, wait out OpenTicks, then crunch.
	r.Trip()
	if r.State() != BreakerOpen || r.Trips() != 2 {
		t.Fatalf("forced trip: state %v trips %d", r.State(), r.Trips())
	}
	for i := 0; i < 3; i++ {
		r.Tick(admDT, &fresh, 1000)
	}
	if r.State() != BreakerHalfOpen {
		t.Fatalf("state %v, want half-open", r.State())
	}
	out = r.Tick(admDT, &fresh, 0) // probe fails
	if out.Breaker != BreakerOpen {
		t.Errorf("failed probe left breaker %v, want open", out.Breaker)
	}
}

func TestRetryWasteFeedbackLagsOneTick(t *testing.T) {
	r := newTestRetry(t, RetryNaive, func(c *RetryConfig) { c.RejectCostFrac = 0.5 })
	fresh := [NumClasses]float64{60000, 0, 0} // 20 erl demand
	out := r.Tick(admDT, &fresh, 5)           // Qmin sheds half the demand
	if out.WastedErl != 0 {
		t.Errorf("first tick wasted %v, want 0 (cost lags one tick)", out.WastedErl)
	}
	rejected := out.Pool.Rejected[ClassInteractive]
	if rejected <= 0 {
		t.Fatalf("scenario bug: no rejections (out %+v)", out)
	}
	out = r.Tick(admDT, &fresh, 5)
	wantWaste := rejected * 0.5 * (20 * time.Millisecond).Seconds() / admDT.Seconds()
	if math.Abs(out.WastedErl-wantWaste) > 1e-9*math.Max(1, wantWaste) {
		t.Errorf("wasted %v erl, want %v from %v rejections", out.WastedErl, wantWaste, rejected)
	}
	if out.EffectiveCapacityErl != 5-out.WastedErl {
		t.Errorf("effective capacity %v, want %v", out.EffectiveCapacityErl, 5-out.WastedErl)
	}
}

func TestRetryRingMatchesInRetry(t *testing.T) {
	r := newTestRetry(t, RetryBackoff)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		fresh := [NumClasses]float64{rng.Float64() * 50000, rng.Float64() * 10000, rng.Float64() * 5000}
		out := r.Tick(admDT, &fresh, rng.Float64()*30)
		retryTickConserves(t, out)
	}
	var ringSum [NumClasses]float64
	for i := range r.ring {
		for c := 0; c < NumClasses; c++ {
			for a := 0; a < MaxRetryAttempts; a++ {
				ringSum[c] += r.ring[i][c][a]
			}
		}
	}
	for c := 0; c < NumClasses; c++ {
		tol := 1e-6 * math.Max(1, r.inRetry[c])
		if math.Abs(ringSum[c]-r.inRetry[c]) > tol {
			t.Errorf("class %s: ring holds %v but in-retry counter says %v", Class(c), ringSum[c], r.inRetry[c])
		}
	}
}

func TestRetryConservationRandomized(t *testing.T) {
	for _, policy := range []RetryPolicy{RetryNaive, RetryBackoff, RetryBudget} {
		r := newTestRetry(t, policy, func(c *RetryConfig) {
			c.SLORetryFrac = 0.05
			c.Breaker = DefaultBreakerConfig()
		})
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 500; i++ {
			fresh := [NumClasses]float64{rng.Float64() * 50000, rng.Float64() * 10000, rng.Float64() * 5000}
			capErl := rng.Float64() * 40
			if rng.Intn(5) == 0 {
				capErl = 0 // hard dips exercise the breaker
			}
			out := r.Tick(admDT, &fresh, capErl)
			retryTickConserves(t, out)
			if err := r.CheckInvariants(time.Duration(i) * admDT); err != nil {
				t.Fatalf("%v tick %d: %v", policy, i, err)
			}
		}
		if r.Ticks() != 500 {
			t.Errorf("%v: ticks %d, want 500", policy, r.Ticks())
		}
	}
}

func TestRetryTickAllocFree(t *testing.T) {
	r := newTestRetry(t, RetryBudget, func(c *RetryConfig) { c.Breaker = DefaultBreakerConfig() })
	fresh := [NumClasses]float64{40000, 8000, 4000}
	for i := 0; i < 100; i++ { // warm into a mixed retry/defer steady state
		capErl := 20.0
		if i%7 == 0 {
			capErl = 2
		}
		r.Tick(admDT, &fresh, capErl)
	}
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		capErl := 20.0
		if i%7 == 0 {
			capErl = 2
		}
		i++
		r.Tick(admDT, &fresh, capErl)
	})
	if allocs != 0 {
		t.Errorf("retry tick allocates %v/op, want 0", allocs)
	}
}

func TestRetryTickPanicsOnBadDT(t *testing.T) {
	r := newTestRetry(t, RetryNaive)
	defer func() {
		if recover() == nil {
			t.Error("no panic on dt = 0")
		}
	}()
	var fresh [NumClasses]float64
	r.Tick(0, &fresh, 10)
}

func TestNewRetryLoopRejectsBadArgs(t *testing.T) {
	adm, err := NewAdmission(DefaultAdmissionConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRetryLoop(DefaultRetryConfig(RetryNaive), nil, sim.NewRNG(1)); err == nil {
		t.Error("nil admission accepted")
	}
	cfg := DefaultRetryConfig(RetryBackoff) // jitter 0.2 needs an RNG
	if _, err := NewRetryLoop(cfg, adm, nil); err == nil {
		t.Error("jitter without RNG accepted")
	}
	cfg.JitterFrac = 0
	if _, err := NewRetryLoop(cfg, adm, nil); err != nil {
		t.Errorf("jitter-free loop without RNG rejected: %v", err)
	}
}
