package workload

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
)

// FuzzRetryTick throws arbitrary arrivals, capacities, and retry/breaker
// knobs at the closed loop and asserts the structural guarantees: no NaN
// or negative counts anywhere, per-tick closed-loop conservation
// (fresh + retried + replay == admitted + deferred + to-retry +
// abandoned, net of SLO re-entries), queues never negative or above
// their cap, and the cumulative ledger after a multi-tick run.
// Registered in the CI fuzz-smoke job.
func FuzzRetryTick(f *testing.F) {
	f.Add(60000.0, 12000.0, 6000.0, 40.0, 0, 4, 0.1, 0.25, false)
	f.Add(0.0, 0.0, 0.0, 0.0, 1, 1, 1.0, 0.0, true)
	f.Add(1e9, 1e9, 1e9, 1.0, 2, 8, 0.01, 1.0, true)
	f.Add(-5.0, math.NaN(), math.Inf(1), -3.0, 1, 3, 0.5, 0.3, false)
	f.Fuzz(func(t *testing.T, i, b, g, capErl float64, policy, maxAttempts int, budgetRatio, rejectCost float64, breaker bool) {
		cfg := DefaultRetryConfig(RetryPolicy(((policy % 3) + 3) % 3))
		cfg.MaxAttempts = int(clampFuzzF(float64(maxAttempts), 1, MaxRetryAttempts))
		cfg.BudgetRatio = clampFuzzF(budgetRatio, 0.001, 10)
		cfg.RejectCostFrac = clampFuzzF(rejectCost, 0, 1)
		cfg.SLORetryFrac = 0.05
		if breaker {
			cfg.Breaker = DefaultBreakerConfig()
			cfg.Breaker.Window = 3
			cfg.Breaker.OpenTicks = 2
			cfg.Breaker.RecoverTicks = 2
		}
		adm, err := NewAdmission(DefaultAdmissionConfig())
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRetryLoop(cfg, adm, sim.NewRNG(1))
		if err != nil {
			t.Fatalf("sanitized config rejected: %v", err)
		}
		fresh := [NumClasses]float64{i, b, g}
		const dt = time.Minute
		for tick := 0; tick < 6; tick++ {
			out := r.Tick(dt, &fresh, capErl)
			for c := 0; c < NumClasses; c++ {
				for _, v := range [...]float64{
					out.Fresh[c], out.Retried[c], out.FastFailed[c],
					out.ToRetry[c], out.Abandoned[c], out.SLORetried[c],
				} {
					if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
						t.Fatalf("tick %d class %s: invalid count %v", tick, Class(c), v)
					}
				}
				handed := out.Fresh[c] + out.Retried[c] - out.FastFailed[c]
				replay := out.Pool.Offered[c] - handed
				in := out.Fresh[c] + out.Retried[c] + replay
				outSum := out.Pool.Admitted[c] + out.Pool.Deferred[c] +
					(out.ToRetry[c] - out.SLORetried[c]) + out.Abandoned[c]
				if tol := 1e-6 * math.Max(1, in); math.Abs(in-outSum) > tol {
					t.Fatalf("tick %d class %s: conservation broken: in %v != out %v",
						tick, Class(c), in, outSum)
				}
			}
			for _, v := range [...]float64{out.GoodputUsers, out.OfferedErl, out.EffectiveCapacityErl, out.WastedErl} {
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("tick %d: invalid aggregate %v", tick, v)
				}
			}
			if err := r.CheckInvariants(time.Duration(tick) * dt); err != nil {
				t.Fatalf("tick %d: %v", tick, err)
			}
		}
	})
}
