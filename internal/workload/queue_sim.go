package workload

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/sim"
)

// QueueSimResult summarizes an event-driven queue run.
type QueueSimResult struct {
	// Completed is the number of requests served.
	Completed int
	// MeanResponse and P95Response summarize sojourn times.
	MeanResponse, P95Response time.Duration
	// MeanUtilization is busy time over the horizon.
	MeanUtilization float64
}

// SimulateMM1 runs an event-driven M/M/1 (FIFO) queue: Poisson arrivals
// at rate lambda (1/s), exponential service at rate mu (1/s), for the
// given virtual horizon. It exists to validate the fluid QueueModel the
// closed-loop experiments use — the fluid R = S/(1−ρ) is exactly the
// M/M/1 mean sojourn time, and this simulator measures it from first
// principles.
func SimulateMM1(lambda, mu float64, horizon time.Duration, rng *sim.RNG) (QueueSimResult, error) {
	return SimulateMM1On(sim.NewEngine(rng.Int63()), lambda, mu, horizon, rng)
}

// SimulateMM1On runs the M/M/1 simulation on a caller-supplied engine
// (which must be fresh: virtual time zero and no pending events), so
// probes and invariant checkers attached to the engine observe the run.
// All randomness comes from rng; the engine's own random source is
// untouched. SimulateMM1 wraps it with an internally-built engine and an
// identical random stream (one Int63 draw for the engine seed first).
func SimulateMM1On(e *sim.Engine, lambda, mu float64, horizon time.Duration, rng *sim.RNG) (QueueSimResult, error) {
	if lambda <= 0 || mu <= 0 {
		return QueueSimResult{}, fmt.Errorf("workload: rates must be positive, got lambda=%v mu=%v", lambda, mu)
	}
	if horizon <= 0 {
		return QueueSimResult{}, fmt.Errorf("workload: horizon %v must be positive", horizon)
	}

	var queue []time.Duration // arrival times of waiting requests
	busy := false
	var busySince time.Duration
	var busyTotal time.Duration
	var sojourns []time.Duration

	var startService func(eng *sim.Engine)
	startService = func(eng *sim.Engine) {
		if busy || len(queue) == 0 {
			return
		}
		busy = true
		busySince = eng.Now()
		arrival := queue[0]
		queue = queue[1:]
		service := time.Duration(rng.Exp(mu) * float64(time.Second))
		eng.ScheduleAfter(service, func(eng2 *sim.Engine) {
			sojourns = append(sojourns, eng2.Now()-arrival)
			busy = false
			busyTotal += eng2.Now() - busySince
			startService(eng2)
		})
	}

	var scheduleArrival func(eng *sim.Engine)
	scheduleArrival = func(eng *sim.Engine) {
		gap := time.Duration(rng.Exp(lambda) * float64(time.Second))
		eng.ScheduleAfter(gap, func(eng2 *sim.Engine) {
			queue = append(queue, eng2.Now())
			startService(eng2)
			scheduleArrival(eng2)
		})
	}
	scheduleArrival(e)
	if err := e.Run(horizon); err != nil {
		return QueueSimResult{}, err
	}
	if busy {
		busyTotal += horizon - busySince
	}
	if len(sojourns) == 0 {
		return QueueSimResult{}, fmt.Errorf("workload: no completions in %v", horizon)
	}
	res := QueueSimResult{
		Completed:       len(sojourns),
		MeanUtilization: busyTotal.Seconds() / horizon.Seconds(),
	}
	// Post-condition: busy time is a union of disjoint intervals inside
	// the horizon, so utilization must land in [0,1]; anything else is an
	// accounting bug, not noise.
	if res.MeanUtilization < 0 || res.MeanUtilization > 1 {
		return QueueSimResult{}, fmt.Errorf("workload: invariant mm1-utilization violated: %v out of [0,1]", res.MeanUtilization)
	}
	var sum time.Duration
	for _, s := range sojourns {
		sum += s
	}
	res.MeanResponse = sum / time.Duration(len(sojourns))
	sorted := append([]time.Duration(nil), sojourns...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	res.P95Response = sorted[int(float64(len(sorted))*0.95)]
	return res, nil
}
