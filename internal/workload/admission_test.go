package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

const admDT = time.Minute

func newTestAdmission(t testing.TB, mutate ...func(*AdmissionConfig)) *Admission {
	t.Helper()
	cfg := DefaultAdmissionConfig()
	for _, m := range mutate {
		m(&cfg)
	}
	a, err := NewAdmission(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// tickConserves asserts the per-tick partition: admitted + rejected +
// deferred == offered, per class, and no negative or NaN counts.
func tickConserves(t *testing.T, out TickOutcome) {
	t.Helper()
	for c := 0; c < NumClasses; c++ {
		for _, v := range []float64{out.Offered[c], out.Admitted[c], out.Rejected[c], out.Deferred[c], out.Degraded[c]} {
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("class %s: invalid count %v in %+v", Class(c), v, out)
			}
		}
		got := out.Admitted[c] + out.Rejected[c] + out.Deferred[c]
		tol := 1e-9 * math.Max(1, out.Offered[c])
		if math.Abs(got-out.Offered[c]) > tol {
			t.Fatalf("class %s: admitted %v + rejected %v + deferred %v != offered %v",
				Class(c), out.Admitted[c], out.Rejected[c], out.Deferred[c], out.Offered[c])
		}
		if out.Degraded[c] > out.Admitted[c]*(1+1e-9) {
			t.Fatalf("class %s: degraded %v > admitted %v", Class(c), out.Degraded[c], out.Admitted[c])
		}
	}
	if out.Q < 0 || out.Q > 1 || math.IsNaN(out.Q) {
		t.Fatalf("Q = %v out of [0,1]", out.Q)
	}
}

func TestAdmissionConfigValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*AdmissionConfig)
	}{
		{"Qmin zero", func(c *AdmissionConfig) { c.Qmin = 0 }},
		{"Qmin above one", func(c *AdmissionConfig) { c.Qmin = 1.5 }},
		{"negative backlog cap", func(c *AdmissionConfig) { c.MaxBacklog = -1 }},
		{"bad class", func(c *AdmissionConfig) { c.Classes[0].ServiceTime = 0 }},
	}
	for _, tc := range cases {
		cfg := DefaultAdmissionConfig()
		tc.mutate(&cfg)
		if _, err := NewAdmission(cfg); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

func TestAdmissionAmpleCapacityAdmitsAll(t *testing.T) {
	a := newTestAdmission(t)
	fresh := [NumClasses]float64{60000, 12000, 6000}
	out := a.Tick(admDT, &fresh, 1000)
	tickConserves(t, out)
	if out.Q != 1 {
		t.Errorf("Q = %v, want 1 at ample capacity", out.Q)
	}
	for c := 0; c < NumClasses; c++ {
		if out.Admitted[c] != fresh[c] {
			t.Errorf("class %s admitted %v, want all %v", Class(c), out.Admitted[c], fresh[c])
		}
		if out.Rejected[c] != 0 || out.Deferred[c] != 0 || out.Degraded[c] != 0 {
			t.Errorf("class %s: unexpected rejection/deferral/degradation at ample capacity: %+v", Class(c), out)
		}
	}
	if err := a.CheckInvariants(admDT); err != nil {
		t.Error(err)
	}
}

func TestAdmissionZeroCapacityRejectsOrDefers(t *testing.T) {
	a := newTestAdmission(t)
	fresh := [NumClasses]float64{100, 100, 100}
	out := a.Tick(admDT, &fresh, 0)
	tickConserves(t, out)
	for c := 0; c < NumClasses; c++ {
		if out.Admitted[c] != 0 {
			t.Errorf("class %s admitted %v with zero capacity", Class(c), out.Admitted[c])
		}
	}
	// Batch defers (Deferrable), the others reject.
	if out.Deferred[ClassBatch] != 100 {
		t.Errorf("batch deferred %v, want 100", out.Deferred[ClassBatch])
	}
	if out.Rejected[ClassInteractive] != 100 || out.Rejected[ClassBackground] != 100 {
		t.Errorf("non-deferrable classes rejected %v/%v, want 100/100",
			out.Rejected[ClassInteractive], out.Rejected[ClassBackground])
	}
	if err := a.CheckInvariants(admDT); err != nil {
		t.Error(err)
	}
}

func TestAdmissionQminShedsLowestClassFirst(t *testing.T) {
	// Demand sized so Q = m/k < Qmin: shedding must hit background
	// before batch before interactive.
	a := newTestAdmission(t, func(c *AdmissionConfig) { c.Qmin = 0.9 })
	// Erlangs at dt=60s: interactive 60000*0.02/60 = 20, batch
	// 12000*0.25/60 = 50, background 30000*0.08/60 = 40. k = 110.
	fresh := [NumClasses]float64{60000, 12000, 30000}
	out := a.Tick(admDT, &fresh, 60) // Q would be 60/110 ≈ 0.55
	tickConserves(t, out)
	if out.Q < a.cfg.Qmin-1e-9 {
		t.Errorf("Q = %v below Qmin %v after shedding", out.Q, a.cfg.Qmin)
	}
	// k' target = 60/0.9 ≈ 66.7 ⇒ shed ≈ 43.3 erl: all 40 background
	// erl plus ~3.3 batch erl. Interactive untouched.
	if out.Admitted[ClassBackground] != 0 {
		t.Errorf("background admitted %v, want 0 (shed first)", out.Admitted[ClassBackground])
	}
	if out.Admitted[ClassBatch] >= fresh[ClassBatch] || out.Admitted[ClassBatch] <= 0 {
		t.Errorf("batch admitted %v, want partial cut of %v", out.Admitted[ClassBatch], fresh[ClassBatch])
	}
	if out.Admitted[ClassInteractive] != fresh[ClassInteractive] {
		t.Errorf("interactive admitted %v, want all %v (shed last)", out.Admitted[ClassInteractive], fresh[ClassInteractive])
	}
	// Batch's cut defers, background's rejects.
	if out.Deferred[ClassBatch] <= 0 {
		t.Errorf("batch cut should defer, deferred = %v", out.Deferred[ClassBatch])
	}
	if out.Rejected[ClassBackground] != fresh[ClassBackground] {
		t.Errorf("background rejected %v, want all %v", out.Rejected[ClassBackground], fresh[ClassBackground])
	}
	if err := a.CheckInvariants(admDT); err != nil {
		t.Error(err)
	}
}

func TestAdmissionFairShareDegradesAdmitted(t *testing.T) {
	// Q in [Qmin, 1): everyone admitted but at reduced share, so all
	// admitted users count as degraded.
	a := newTestAdmission(t, func(c *AdmissionConfig) { c.Qmin = 0.5 })
	fresh := [NumClasses]float64{60000, 0, 0} // 20 erl
	out := a.Tick(admDT, &fresh, 15)          // Q = 0.75
	tickConserves(t, out)
	if math.Abs(out.Q-0.75) > 1e-9 {
		t.Errorf("Q = %v, want 0.75", out.Q)
	}
	if out.Admitted[ClassInteractive] != fresh[ClassInteractive] {
		t.Errorf("admitted %v, want all", out.Admitted[ClassInteractive])
	}
	if out.Degraded[ClassInteractive] != fresh[ClassInteractive] {
		t.Errorf("degraded %v, want all admitted at Q<1", out.Degraded[ClassInteractive])
	}
}

func TestAdmissionShedLadder(t *testing.T) {
	fresh := [NumClasses]float64{6000, 1200, 600}
	for level := 0; level <= MaxShedLevel; level++ {
		a := newTestAdmission(t)
		a.SetShedLevel(level)
		if a.ShedLevel() != level {
			t.Fatalf("shed level = %d, want %d", a.ShedLevel(), level)
		}
		f := fresh
		out := a.Tick(admDT, &f, 1000)
		tickConserves(t, out)
		modes := shedTable[level]
		for c := 0; c < NumClasses; c++ {
			switch modes[c] {
			case modeAdmit:
				if out.Admitted[c] != fresh[c] || out.Degraded[c] != 0 {
					t.Errorf("level %d class %s: admitted %v degraded %v, want full clean admission",
						level, Class(c), out.Admitted[c], out.Degraded[c])
				}
			case modeDegrade:
				if out.Admitted[c] != fresh[c] || out.Degraded[c] != fresh[c] {
					t.Errorf("level %d class %s: admitted %v degraded %v, want full degraded admission",
						level, Class(c), out.Admitted[c], out.Degraded[c])
				}
			case modeShed:
				if out.Admitted[c] != 0 {
					t.Errorf("level %d class %s: admitted %v, want 0 (shed)", level, Class(c), out.Admitted[c])
				}
			}
		}
		if err := a.CheckInvariants(admDT); err != nil {
			t.Errorf("level %d: %v", level, err)
		}
	}
	// Clamping.
	a := newTestAdmission(t)
	a.SetShedLevel(-3)
	if a.ShedLevel() != 0 {
		t.Errorf("negative level clamped to %d, want 0", a.ShedLevel())
	}
	a.SetShedLevel(99)
	if a.ShedLevel() != MaxShedLevel {
		t.Errorf("huge level clamped to %d, want %d", a.ShedLevel(), MaxShedLevel)
	}
}

func TestAdmissionBacklogReplaysNextTick(t *testing.T) {
	a := newTestAdmission(t)
	fresh := [NumClasses]float64{0, 600, 0}
	out := a.Tick(admDT, &fresh, 0) // no capacity: batch defers
	if out.Deferred[ClassBatch] != 600 {
		t.Fatalf("deferred %v, want 600", out.Deferred[ClassBatch])
	}
	if a.Backlog(ClassBatch) != 600 {
		t.Fatalf("backlog %v, want 600", a.Backlog(ClassBatch))
	}
	// Next tick with ample capacity replays the backlog as offered.
	zero := [NumClasses]float64{}
	out = a.Tick(admDT, &zero, 1000)
	tickConserves(t, out)
	if out.Offered[ClassBatch] != 600 {
		t.Errorf("replayed offered %v, want 600", out.Offered[ClassBatch])
	}
	if out.Admitted[ClassBatch] != 600 {
		t.Errorf("replayed admitted %v, want 600", out.Admitted[ClassBatch])
	}
	if a.Backlog(ClassBatch) != 0 {
		t.Errorf("backlog after replay %v, want 0", a.Backlog(ClassBatch))
	}
	if err := a.CheckInvariants(2 * admDT); err != nil {
		t.Error(err)
	}
}

func TestAdmissionBacklogCapOverflowsToRejection(t *testing.T) {
	a := newTestAdmission(t, func(c *AdmissionConfig) { c.MaxBacklog = 500 })
	fresh := [NumClasses]float64{0, 2000, 0}
	out := a.Tick(admDT, &fresh, 0)
	tickConserves(t, out)
	if out.Deferred[ClassBatch] != 500 {
		t.Errorf("deferred %v, want backlog cap 500", out.Deferred[ClassBatch])
	}
	if out.Rejected[ClassBatch] != 1500 {
		t.Errorf("rejected %v, want overflow 1500", out.Rejected[ClassBatch])
	}
	if err := a.CheckInvariants(admDT); err != nil {
		t.Error(err)
	}
}

func TestAdmissionSLOMiss(t *testing.T) {
	a := newTestAdmission(t)
	// Comfortable: 20 erl of interactive on 100 servers → tiny wait.
	fresh := [NumClasses]float64{60000, 0, 0}
	out := a.Tick(admDT, &fresh, 100)
	if out.SLOMiss[ClassInteractive] {
		t.Errorf("SLO miss at ample capacity, wait %v", out.WaitSec[ClassInteractive])
	}
	// Crunch at the Qmin floor: the admitted load runs hot against its
	// allocation and the expected wait blows through the 40ms SLO.
	a2 := newTestAdmission(t, func(c *AdmissionConfig) { c.Qmin = 0.5 })
	fresh = [NumClasses]float64{60000, 0, 0}
	out = a2.Tick(admDT, &fresh, 11) // 20 erl demand on 11 servers, Q≈0.55
	if !out.SLOMiss[ClassInteractive] {
		t.Errorf("no SLO miss under crunch, wait %v", out.WaitSec[ClassInteractive])
	}
	if a2.SLOMissRate(ClassInteractive) != 1 {
		t.Errorf("SLO miss rate %v, want 1", a2.SLOMissRate(ClassInteractive))
	}
	if a2.SLOMissRate(ClassBatch) != 0 {
		t.Errorf("idle class SLO miss rate %v, want 0", a2.SLOMissRate(ClassBatch))
	}
}

func TestAdmissionCumulativeAccounting(t *testing.T) {
	a := newTestAdmission(t)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		var fresh [NumClasses]float64
		for c := range fresh {
			fresh[c] = rng.Float64() * 50000
		}
		cap := rng.Float64() * 40
		out := a.Tick(admDT, &fresh, cap)
		tickConserves(t, out)
		if err := a.CheckInvariants(time.Duration(i) * admDT); err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
	}
	if a.Ticks() != 200 {
		t.Errorf("ticks = %d, want 200", a.Ticks())
	}
	total := a.AdmittedUsers() + a.RejectedUsers() + a.DeferredBacklog()
	if math.Abs(total-a.OfferedUsers()) > 1e-6*a.OfferedUsers() {
		t.Errorf("cumulative conservation: admitted %v + rejected %v + backlog %v != offered %v",
			a.AdmittedUsers(), a.RejectedUsers(), a.DeferredBacklog(), a.OfferedUsers())
	}
	if a.DegradedUsers() > a.AdmittedUsers() {
		t.Errorf("degraded %v > admitted %v", a.DegradedUsers(), a.AdmittedUsers())
	}
}

// Property (satellite 1): for fixed offered load and shed level, the
// granted share Q is monotone non-decreasing in capacity.
func TestAdmissionQMonotoneInCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var fresh [NumClasses]float64
		for c := range fresh {
			fresh[c] = rng.Float64() * 100000
		}
		qmin := 0.1 + 0.9*rng.Float64()
		level := rng.Intn(MaxShedLevel + 1)
		prevQ := -1.0
		for _, capScale := range []float64{0, 0.1, 0.25, 0.5, 1, 2, 4, 8, 16, 64} {
			a := newTestAdmission(t, func(c *AdmissionConfig) { c.Qmin = qmin })
			a.SetShedLevel(level)
			f := fresh
			out := a.Tick(admDT, &f, capScale*10)
			tickConserves(t, out)
			if out.Q < prevQ-1e-9 {
				t.Fatalf("trial %d (qmin %v level %d): Q fell from %v to %v as capacity rose to %v",
					trial, qmin, level, prevQ, out.Q, capScale*10)
			}
			prevQ = out.Q
		}
		if prevQ != 1 {
			t.Fatalf("trial %d: Q = %v at effectively infinite capacity, want 1", trial, prevQ)
		}
	}
}

// Property (satellite 1): randomized conservation across class mixes,
// capacities, shed levels, and consecutive ticks with backlog carryover.
func TestAdmissionConservationRandomized(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultAdmissionConfig()
		cfg.Qmin = 0.1 + 0.9*rng.Float64()
		cfg.MaxBacklog = rng.Float64() * 1e5
		a, err := NewAdmission(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			if rng.Intn(10) == 0 {
				a.SetShedLevel(rng.Intn(MaxShedLevel + 1))
			}
			var fresh [NumClasses]float64
			for c := range fresh {
				if rng.Intn(4) == 0 {
					continue // zero-population class
				}
				fresh[c] = rng.Float64() * 200000
			}
			out := a.Tick(admDT, &fresh, rng.Float64()*100)
			tickConserves(t, out)
			if err := a.CheckInvariants(time.Duration(i) * admDT); err != nil {
				t.Fatalf("seed %d tick %d: %v", seed, i, err)
			}
		}
	}
}

// Satellite 4: the steady-state admission tick must not allocate — the
// same discipline as the dispatch/physics hot paths.
func TestAdmissionTickAllocFree(t *testing.T) {
	a := newTestAdmission(t)
	fresh := [NumClasses]float64{600000, 120000, 60000}
	sink := a.Tick(admDT, &fresh, 10000) // warm up at the 10k tier
	allocs := testing.AllocsPerRun(100, func() {
		f := fresh
		sink = a.Tick(admDT, &f, 10000)
	})
	if allocs != 0 {
		t.Errorf("admission tick allocates %v allocs/op, want 0", allocs)
	}
	_ = sink
}

func TestAdmissionTickPanicsOnBadDT(t *testing.T) {
	a := newTestAdmission(t)
	defer func() {
		if recover() == nil {
			t.Error("non-positive dt should panic")
		}
	}()
	var fresh [NumClasses]float64
	a.Tick(0, &fresh, 10)
}

func TestAdmissionSanitizesBadInputs(t *testing.T) {
	a := newTestAdmission(t)
	fresh := [NumClasses]float64{math.NaN(), -50, 1000}
	out := a.Tick(admDT, &fresh, math.NaN())
	tickConserves(t, out)
	if out.Offered[ClassInteractive] != 0 || out.Offered[ClassBatch] != 0 {
		t.Errorf("NaN/negative arrivals not sanitized: %+v", out.Offered)
	}
	if err := a.CheckInvariants(admDT); err != nil {
		t.Error(err)
	}
}
