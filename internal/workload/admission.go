package workload

import (
	"fmt"
	"math"
	"time"

	"repro/internal/stats"
)

// AdmissionConfig parameterizes the fair-share admission controller.
type AdmissionConfig struct {
	// Classes is the per-class service model.
	Classes RequestClasses
	// Qmin is the fair-share floor (after SNIPPETS Snippets 1–2): when
	// the per-user share Q = m/k would fall below it, the controller
	// sheds users instead of degrading everyone further. In (0,1].
	Qmin float64
	// MaxBacklog caps each deferrable class's backlog in users;
	// deferrals beyond it become rejections so the backlog cannot grow
	// without bound during a sustained crunch.
	MaxBacklog float64
}

// DefaultAdmissionConfig matches the default request classes with a 0.5
// fair-share floor and a million-user deferral backlog.
func DefaultAdmissionConfig() AdmissionConfig {
	return AdmissionConfig{
		Classes:    DefaultRequestClasses(),
		Qmin:       0.5,
		MaxBacklog: 1e6,
	}
}

// Validate checks the configuration, collecting every violation —
// across all classes and the controller's own knobs — into one
// aggregated error in the cmd/dcsim flag-validation style, instead of
// stopping at the first problem.
func (c AdmissionConfig) Validate() error {
	problems := c.Classes.problems(nil)
	if c.Qmin <= 0 || c.Qmin > 1 || math.IsNaN(c.Qmin) {
		problems = append(problems, fmt.Sprintf("Qmin %v out of (0,1]", c.Qmin))
	}
	if c.MaxBacklog < 0 || math.IsNaN(c.MaxBacklog) {
		problems = append(problems, fmt.Sprintf("max backlog %v must be non-negative", c.MaxBacklog))
	}
	return problemsErr("invalid admission config", problems)
}

// classMode is what the shedding ladder currently does to a class.
type classMode int

const (
	modeAdmit   classMode = iota // full service
	modeDegrade                  // admitted at DegradeCost, counted degraded
	modeShed                     // not admitted: deferred or rejected
)

// shedTable maps the ladder level to per-class modes. Level 0 is normal
// fair-share; each level pushes the lowest surviving class one rung down
// (admit → degrade → shed), so graceful degradation is expressed in
// users: background degrades first, then sheds while batch degrades,
// until only interactive traffic is admitted.
var shedTable = [4][NumClasses]classMode{
	{modeAdmit, modeAdmit, modeAdmit},
	{modeAdmit, modeAdmit, modeDegrade},
	{modeAdmit, modeDegrade, modeShed},
	{modeAdmit, modeShed, modeShed},
}

// MaxShedLevel is the deepest ladder level (interactive-only admission).
const MaxShedLevel = len(shedTable) - 1

// Sanitization bounds: hostile inputs (fuzzing, broken generators) are
// clamped so arithmetic stays finite. 1e15 users per tick and 1e12
// server-equivalents are far beyond any physical operating point.
const (
	maxUsersPerTick  = 1e15
	maxCapacityErl   = 1e12
	maxErlangServers = 1e6 // Erlang-C iteration bound; waits are ~0 past it
)

// TickOutcome is the user-visible result of one admission tick. All
// fields are value arrays so the per-tick path allocates nothing.
type TickOutcome struct {
	// Q is the fair share granted to admitted users: min(1, m/k) over
	// the post-shed demand, floored at Qmin by shedding.
	Q float64
	// DemandErl is the pre-admission offered load in server-equivalents
	// (Erlangs), including replayed backlog; CapacityErl is the m it was
	// admitted against. AdmittedErl is the load actually placed.
	DemandErl, CapacityErl, AdmittedErl float64
	// Offered counts the users wanting service this tick per class —
	// fresh arrivals plus replayed backlog. Every tick,
	// Admitted + Rejected + Deferred == Offered per class.
	Offered [NumClasses]float64
	// Admitted, Rejected, Deferred partition Offered.
	Admitted [NumClasses]float64
	Rejected [NumClasses]float64
	Deferred [NumClasses]float64
	// Degraded is the subset of Admitted served below full quality:
	// class-degraded by the ladder, or admitted at fair share Q < 1.
	Degraded [NumClasses]float64
	// WaitSec is the Erlang-C mean queueing delay per class (+Inf when
	// the class's allocation is unstable); SLOMiss flags classes whose
	// expected wait exceeded their SLO target this tick.
	WaitSec [NumClasses]float64
	SLOMiss [NumClasses]bool
}

// Admission is the batched fair-share admission controller: one Tick per
// decision period admits, degrades, defers, or rejects the tick's
// offered users against the capacity the power side granted. The
// zero-allocation per-tick discipline of the dispatch path applies; all
// state is fixed-size.
//
// Admission is not safe for concurrent use; like every model in this
// library it belongs to one engine's single-threaded event loop.
type Admission struct {
	cfg  AdmissionConfig
	shed int

	backlog [NumClasses]float64
	lastQ   float64

	ticks        int64
	freshTot     [NumClasses]float64
	admittedTot  [NumClasses]float64
	rejectedTot  [NumClasses]float64
	degradedTot  [NumClasses]float64
	deferEvents  [NumClasses]float64
	sloMissTicks [NumClasses]int64
	activeTicks  [NumClasses]int64 // ticks with admitted > 0 (SLO denominators)
}

// NewAdmission builds a controller from the configuration.
func NewAdmission(cfg AdmissionConfig) (*Admission, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Admission{cfg: cfg, lastQ: 1}, nil
}

// Config reports the configuration.
func (a *Admission) Config() AdmissionConfig { return a.cfg }

// SetShedLevel moves the shedding ladder (0 = normal fair share,
// MaxShedLevel = interactive-only). Out-of-range levels clamp.
func (a *Admission) SetShedLevel(level int) {
	if level < 0 {
		level = 0
	}
	if level > MaxShedLevel {
		level = MaxShedLevel
	}
	a.shed = level
}

// ShedLevel reports the current ladder level.
func (a *Admission) ShedLevel() int { return a.shed }

// Q reports the fair share granted on the most recent tick (1 before
// any tick).
func (a *Admission) Q() float64 { return a.lastQ }

// Backlog reports the deferred-user backlog of one class.
func (a *Admission) Backlog(c Class) float64 { return a.backlog[c] }

// Ticks reports how many admission ticks have run.
func (a *Admission) Ticks() int64 { return a.ticks }

// OfferedUsers reports cumulative fresh arrivals across classes
// (backlog replays are not double-counted).
func (a *Admission) OfferedUsers() float64 { return sumClasses(&a.freshTot) }

// AdmittedUsers reports cumulative admitted users across classes.
func (a *Admission) AdmittedUsers() float64 { return sumClasses(&a.admittedTot) }

// RejectedUsers reports cumulative rejected users across classes.
func (a *Admission) RejectedUsers() float64 { return sumClasses(&a.rejectedTot) }

// DegradedUsers reports cumulative degraded-service users across classes.
func (a *Admission) DegradedUsers() float64 { return sumClasses(&a.degradedTot) }

// DeferredBacklog reports the total backlog currently deferred.
func (a *Admission) DeferredBacklog() float64 { return sumClasses(&a.backlog) }

// ClassAdmitted reports cumulative admitted users of one class.
func (a *Admission) ClassAdmitted(c Class) float64 { return a.admittedTot[c] }

// ClassRejected reports cumulative rejected users of one class.
func (a *Admission) ClassRejected(c Class) float64 { return a.rejectedTot[c] }

// ClassDegraded reports cumulative degraded users of one class.
func (a *Admission) ClassDegraded(c Class) float64 { return a.degradedTot[c] }

// SLOMissRate reports the fraction of a class's active ticks (ticks
// that admitted any of its users) whose Erlang-C wait missed the SLO.
func (a *Admission) SLOMissRate(c Class) float64 {
	if a.activeTicks[c] == 0 {
		return 0
	}
	return float64(a.sloMissTicks[c]) / float64(a.activeTicks[c])
}

func sumClasses(v *[NumClasses]float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Tick admits one decision period's arrivals against capacityErl
// server-equivalents of granted capacity. fresh holds the new user
// arrivals per class for a tick of length dt; deferred backlog from
// earlier ticks is replayed ahead of fresh work. The receiver-owned
// arrays make the call allocation-free.
//
// The fair-share rule follows Snippets 1–2: every user wanting service
// gets share Q = min(1, m/k) of its nominal resource; when Q would sink
// below Qmin, users are shed lowest-class-first until the survivors'
// share recovers to the floor. Admitted users at Q < 1 — and any class
// the ladder marked degraded — count as degraded, the user-visible cost
// the experiments report next to watts.
func (a *Admission) Tick(dt time.Duration, fresh *[NumClasses]float64, capacityErl float64) TickOutcome {
	if dt <= 0 {
		panic(fmt.Sprintf("workload: admission tick dt %v must be positive", dt))
	}
	if capacityErl < 0 || math.IsNaN(capacityErl) {
		capacityErl = 0
	}
	if capacityErl > maxCapacityErl {
		capacityErl = maxCapacityErl
	}
	var out TickOutcome
	out.CapacityErl = capacityErl
	modes := &shedTable[a.shed]
	dtSec := dt.Seconds()

	// Offered = fresh arrivals + replayed backlog. The backlog is
	// consumed here; whatever cannot be admitted re-defers (or is
	// rejected) below, so a user is never both in Offered's replay and
	// in the closing backlog.
	var remaining [NumClasses]float64
	for c := 0; c < NumClasses; c++ {
		f := fresh[c]
		if f < 0 || math.IsNaN(f) {
			f = 0
		}
		if f > maxUsersPerTick {
			f = maxUsersPerTick
		}
		a.freshTot[c] += f
		out.Offered[c] = f + a.backlog[c]
		remaining[c] = out.Offered[c]
		a.backlog[c] = 0
	}

	// Ladder-shed classes never reach the fair-share pool.
	for c := 0; c < NumClasses; c++ {
		if modes[c] == modeShed {
			a.removeUsers(&out, Class(c), remaining[c])
			remaining[c] = 0
		}
	}

	// Demand in Erlangs: λ·S per class, degraded classes at DegradeCost.
	var erl [NumClasses]float64
	var k float64
	for c := 0; c < NumClasses; c++ {
		erl[c] = remaining[c] / dtSec * a.cfg.Classes[c].ServiceTime.Seconds() * a.classCost(Class(c), modes)
		k += erl[c]
	}
	out.DemandErl = k
	for c := 0; c < NumClasses; c++ {
		// Shed classes still demanded service; report them in DemandErl
		// at nominal cost so planners see the pre-shed load.
		if modes[c] == modeShed {
			out.DemandErl += out.Offered[c] / dtSec * a.cfg.Classes[c].ServiceTime.Seconds()
		}
	}

	// Fair share, floored at Qmin by shedding lowest class first.
	q := 1.0
	if k > 0 {
		q = capacityErl / k
		if q > 1 {
			q = 1
		}
	}
	if q < a.cfg.Qmin {
		// Trim demand to the level the floor can carry: k' = m/Qmin.
		excess := k - capacityErl/a.cfg.Qmin
		for _, c := range shedOrder {
			if excess <= 0 {
				break
			}
			if erl[c] <= 0 {
				continue
			}
			cut := excess
			if cut > erl[c] {
				cut = erl[c]
			}
			users := remaining[c] * (cut / erl[c])
			a.removeUsers(&out, c, users)
			remaining[c] -= users
			erl[c] -= cut
			excess -= cut
		}
		k = 0
		for c := 0; c < NumClasses; c++ {
			k += erl[c]
		}
		// The survivors' share recovers to the floor (shedding targets
		// k' = m/Qmin); clamp so Q reports exactly [Qmin, 1] regardless
		// of rounding, and so a fully-shed tick (capacity zero) reports
		// the floor rather than an idle 1 — keeping Q monotone in
		// capacity for a fixed offered load.
		q = a.cfg.Qmin
		if k > 0 {
			q = capacityErl / k
			if q > 1 {
				q = 1
			}
			if q < a.cfg.Qmin {
				q = a.cfg.Qmin
			}
		}
	}
	out.Q = q
	out.AdmittedErl = k * math.Min(q, 1)
	a.lastQ = q
	a.ticks++

	// Admit the survivors; count degradation and evaluate per-class
	// Erlang-C SLOs on a capacity split proportional to admitted load.
	for c := 0; c < NumClasses; c++ {
		adm := remaining[c]
		out.Admitted[c] = adm
		a.admittedTot[c] += adm
		if adm <= 0 {
			continue
		}
		if modes[c] == modeDegrade || q < 1 {
			out.Degraded[c] = adm
			a.degradedTot[c] += adm
		}
		a.activeTicks[c]++

		lambda := adm / dtSec
		st := a.cfg.Classes[c].ServiceTime.Seconds()
		mu := 1 / st
		// The class's server allocation: its share of capacity, at
		// least one server whenever it admitted anyone.
		n := 1
		if k > 0 {
			share := capacityErl * (erl[c] / k)
			if share > maxErlangServers {
				share = maxErlangServers
			}
			if int(share) > n {
				n = int(share)
			}
		}
		wait, err := stats.MMcWait(n, lambda, mu)
		if err != nil {
			wait = math.Inf(1)
		}
		out.WaitSec[c] = wait
		if slo := a.cfg.Classes[c].SLOWait.Seconds(); wait > slo {
			out.SLOMiss[c] = true
			a.sloMissTicks[c]++
		}
	}
	return out
}

// classCost is the per-request capacity cost multiplier under the
// current ladder modes.
func (a *Admission) classCost(c Class, modes *[NumClasses]classMode) float64 {
	if modes[c] == modeDegrade {
		return a.cfg.Classes[c].DegradeCost
	}
	return 1
}

// removeUsers takes users of class c out of this tick's admission:
// deferrable classes push into the backlog up to MaxBacklog, the rest
// (and the overflow) are rejected. Deferred + Rejected additions equal
// users exactly, preserving per-tick conservation.
func (a *Admission) removeUsers(out *TickOutcome, c Class, users float64) {
	if users <= 0 {
		return
	}
	var defer_ float64
	if a.cfg.Classes[c].Deferrable {
		headroom := a.cfg.MaxBacklog - a.backlog[c]
		if headroom < 0 {
			headroom = 0
		}
		defer_ = math.Min(users, headroom)
		a.backlog[c] += defer_
		if defer_ > 0 {
			a.deferEvents[c] += defer_
		}
	}
	rej := users - defer_
	out.Deferred[c] += defer_
	out.Rejected[c] += rej
	a.rejectedTot[c] += rej
}

// CheckInvariants implements the invariant checker's Checkable
// interface: user accounting must conserve (every fresh arrival is
// admitted, rejected, or sitting in the backlog), counts must be finite
// and non-negative, the share in [0,1], and the backlog within its cap.
func (a *Admission) CheckInvariants(now time.Duration) error {
	if a.lastQ < 0 || a.lastQ > 1 || math.IsNaN(a.lastQ) {
		return fmt.Errorf("admission: fair share Q %v out of [0,1] at %v", a.lastQ, now)
	}
	for c := 0; c < NumClasses; c++ {
		cl := Class(c)
		for _, v := range [...]struct {
			name string
			val  float64
		}{
			{"fresh", a.freshTot[c]},
			{"admitted", a.admittedTot[c]},
			{"rejected", a.rejectedTot[c]},
			{"degraded", a.degradedTot[c]},
			{"backlog", a.backlog[c]},
		} {
			if v.val < 0 || math.IsNaN(v.val) || math.IsInf(v.val, 0) {
				return fmt.Errorf("admission: %s %s count %v invalid at %v", cl, v.name, v.val, now)
			}
		}
		if a.backlog[c] > a.cfg.MaxBacklog*(1+1e-9) {
			return fmt.Errorf("admission: %s backlog %v exceeds cap %v at %v", cl, a.backlog[c], a.cfg.MaxBacklog, now)
		}
		if a.degradedTot[c] > a.admittedTot[c]*(1+1e-9) {
			return fmt.Errorf("admission: %s degraded %v exceeds admitted %v at %v", cl, a.degradedTot[c], a.admittedTot[c], now)
		}
		want := a.freshTot[c]
		got := a.admittedTot[c] + a.rejectedTot[c] + a.backlog[c]
		tol := 1e-6 * math.Max(1, want)
		if math.Abs(got-want) > tol {
			return fmt.Errorf("admission: %s conservation broken at %v: admitted %v + rejected %v + backlog %v != offered %v",
				cl, now, a.admittedTot[c], a.rejectedTot[c], a.backlog[c], want)
		}
	}
	return nil
}
