package workload

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestRetryBudgetGoodputDominatesNaive is the satellite property test:
// for any fixed capacity trace, a retry-budget client population must
// complete at least as many users as naive immediate retries. The
// mechanism: naive clients burn their retry attempts into the teeth of
// a dip (and their rejections burn RejectCostFrac of capacity), so more
// of them exhaust MaxAttempts and abandon; budgeted clients defer and
// land once capacity returns. Both runs see an identical arrival
// sequence and drain against ample capacity before comparing, so the
// only difference is what each policy abandoned along the way.
func TestRetryBudgetGoodputDominatesNaive(t *testing.T) {
	const dt = time.Second
	run := func(policy RetryPolicy, seed int64) (goodput, fresh, abandoned float64) {
		cfg := DefaultRetryConfig(policy)
		cfg.MaxAttempts = 2
		cfg.BaseDelay = 2 * dt
		cfg.MaxDelay = 16 * dt
		cfg.BudgetRatio = 0.25
		cfg.SLORetryFrac = 0
		adm, err := NewAdmission(DefaultAdmissionConfig())
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRetryLoop(cfg, adm, sim.NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		// Interactive-only load around 15 erl on 25 servers, with random
		// sustained capacity-dip episodes (10-40 ticks of near-total
		// loss) — the regime where naive clients burn every attempt into
		// the dip while budgeted clients defer past it.
		var arrivals [NumClasses]float64
		inDip, dipCap := 0, 0.0
		for i := 0; i < 300; i++ {
			arrivals[ClassInteractive] = 500 + rng.Float64()*400 // ~10-18 erl at 20 ms
			capErl := 25.0
			if inDip > 0 {
				capErl = dipCap
				inDip--
			} else if rng.Float64() < 0.02 {
				inDip = 10 + rng.Intn(20)
				dipCap = rng.Float64() * 1.5
			}
			r.Tick(dt, &arrivals, capErl)
		}
		// Drain: a fixed tick count for both policies (identical fresh
		// totals), normal load, ample capacity; fresh traffic keeps
		// budget tokens flowing so deferred stragglers release too.
		arrivals[ClassInteractive] = 500
		for i := 0; i < 3000; i++ {
			r.Tick(dt, &arrivals, 100)
		}
		if left := r.InRetryTotal() + r.Admission().DeferredBacklog(); left > 1e-6 {
			t.Fatalf("%v seed %d: drain incomplete, %v users still queued", policy, seed, left)
		}
		return r.GoodputUsers(), r.FreshUsers(), r.AbandonedUsers()
	}
	for seed := int64(0); seed < 15; seed++ {
		naive, naiveFresh, naiveAband := run(RetryNaive, seed)
		budget, budgetFresh, _ := run(RetryBudget, seed)
		if naiveFresh != budgetFresh {
			t.Fatalf("seed %d: arrival sequences diverged: %v vs %v", seed, naiveFresh, budgetFresh)
		}
		if budget < naive-1e-6*naiveFresh {
			t.Errorf("seed %d: budget goodput %v < naive goodput %v (fresh %v, naive abandoned %v)",
				seed, budget, naive, naiveFresh, naiveAband)
		}
	}
}
