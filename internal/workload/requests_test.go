package workload

import (
	"math"
	"testing"
	"time"
)

func TestClassString(t *testing.T) {
	want := map[Class]string{
		ClassInteractive: "interactive",
		ClassBatch:       "batch",
		ClassBackground:  "background",
		Class(7):         "class(7)",
	}
	for c, s := range want {
		if got := c.String(); got != s {
			t.Errorf("Class(%d).String() = %q, want %q", int(c), got, s)
		}
	}
}

func TestDefaultRequestClassesValid(t *testing.T) {
	if err := DefaultRequestClasses().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestClassConfigValidate(t *testing.T) {
	base := DefaultRequestClasses()[ClassInteractive]
	cases := []struct {
		name   string
		mutate func(*ClassConfig)
	}{
		{"zero service time", func(c *ClassConfig) { c.ServiceTime = 0 }},
		{"negative SLO", func(c *ClassConfig) { c.SLOWait = -time.Second }},
		{"zero degrade cost", func(c *ClassConfig) { c.DegradeCost = 0 }},
		{"degrade cost above one", func(c *ClassConfig) { c.DegradeCost = 1.5 }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("default class invalid: %v", err)
	}
}

func TestClassMixValidate(t *testing.T) {
	if err := DefaultClassMix().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (ClassMix{-0.1, 0.5, 0.6}).Validate(); err == nil {
		t.Error("negative share should error")
	}
	if err := (ClassMix{}).Validate(); err == nil {
		t.Error("all-zero mix should error")
	}
}

func TestClassMixSplit(t *testing.T) {
	var dst [NumClasses]float64
	mix := ClassMix{2, 1, 1} // unnormalized on purpose
	mix.Split(100, &dst)
	want := [NumClasses]float64{50, 25, 25}
	for c := range dst {
		if math.Abs(dst[c]-want[c]) > 1e-9 {
			t.Errorf("split[%d] = %v, want %v", c, dst[c], want[c])
		}
	}
	// Conservation of the split.
	var sum float64
	for _, v := range dst {
		sum += v
	}
	if math.Abs(sum-100) > 1e-9 {
		t.Errorf("split sum = %v, want 100", sum)
	}
}

func TestClassMixSplitZeroShareClass(t *testing.T) {
	// A zero-population class is valid: it simply receives no users.
	var dst [NumClasses]float64
	mix := ClassMix{1, 0, 1}
	mix.Split(80, &dst)
	if dst[ClassBatch] != 0 {
		t.Errorf("zero-share class got %v users", dst[ClassBatch])
	}
	if dst[ClassInteractive] != 40 || dst[ClassBackground] != 40 {
		t.Errorf("split = %v, want 40/0/40", dst)
	}
}

func TestClassMixSplitDegenerate(t *testing.T) {
	dst := [NumClasses]float64{1, 2, 3}
	(ClassMix{}).Split(100, &dst)
	if dst != ([NumClasses]float64{}) {
		t.Errorf("zero-sum mix split = %v, want zeros", dst)
	}
	dst = [NumClasses]float64{1, 2, 3}
	DefaultClassMix().Split(0, &dst)
	if dst != ([NumClasses]float64{}) {
		t.Errorf("zero-total split = %v, want zeros", dst)
	}
	dst = [NumClasses]float64{1, 2, 3}
	DefaultClassMix().Split(-5, &dst)
	if dst != ([NumClasses]float64{}) {
		t.Errorf("negative-total split = %v, want zeros", dst)
	}
}

func TestUsersPerTick(t *testing.T) {
	if got := UsersPerTick(1000, time.Minute); got != 60000 {
		t.Errorf("UsersPerTick(1000, 1m) = %v, want 60000", got)
	}
	if got := UsersPerTick(-3, time.Minute); got != 0 {
		t.Errorf("negative rate gave %v users", got)
	}
	if got := UsersPerTick(0, time.Minute); got != 0 {
		t.Errorf("zero rate gave %v users", got)
	}
}
