package workload

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestQueueModelResponse(t *testing.T) {
	q := DefaultQueueModel()
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := q.Response(0); got != q.ServiceTime {
		t.Errorf("idle response = %v, want service time %v", got, q.ServiceTime)
	}
	if got := q.Response(0.5); got != 2*q.ServiceTime {
		t.Errorf("rho=0.5 response = %v, want %v", got, 2*q.ServiceTime)
	}
	if got := q.Response(1); got != q.MaxResponse {
		t.Errorf("saturated response = %v, want cap %v", got, q.MaxResponse)
	}
	if got := q.Response(-1); got != q.ServiceTime {
		t.Errorf("negative rho response = %v", got)
	}
	// Delay blows up near saturation (the mechanism behind the §5.1
	// DVFS/on-off pathology).
	if q.Response(0.99) <= q.Response(0.9) {
		t.Error("response not increasing toward saturation")
	}
}

func TestQueueModelValidation(t *testing.T) {
	bad := QueueModel{ServiceTime: 0, MaxResponse: time.Second}
	if err := bad.Validate(); err == nil {
		t.Error("zero service time should error")
	}
	bad = QueueModel{ServiceTime: time.Second, MaxResponse: time.Millisecond}
	if err := bad.Validate(); err == nil {
		t.Error("cap below service time should error")
	}
}

func TestUtilizationForInvertsResponse(t *testing.T) {
	q := DefaultQueueModel()
	for _, rho := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		target := q.Response(rho)
		back := q.UtilizationFor(target)
		// Response truncates to whole nanoseconds, so the round trip
		// carries quantization error.
		if math.Abs(back-rho) > 1e-6 {
			t.Errorf("UtilizationFor(Response(%v)) = %v", rho, back)
		}
	}
	if q.UtilizationFor(q.ServiceTime/2) != 0 {
		t.Error("target below service time should give 0")
	}
	if q.UtilizationFor(q.MaxResponse*2) != 1 {
		t.Error("target above cap should give 1")
	}
}

func TestConnectionServiceServersNeeded(t *testing.T) {
	c := DefaultConnectionService()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// 1M connections at 80k each → 13 servers by connections.
	n := c.ServersNeeded(1e6, 0)
	if n != 13 {
		t.Errorf("servers for 1M connections = %d, want 13", n)
	}
	// 1400 logins/s at 60/s each → 24 servers by login rate: during
	// flash crowds the login constraint binds, as [18] observes.
	n = c.ServersNeeded(0, 1400)
	if n != 24 {
		t.Errorf("servers for 1400 logins/s = %d, want 24", n)
	}
	// The max of both constraints wins.
	if got := c.ServersNeeded(1e6, 1400); got != 24 {
		t.Errorf("combined = %d, want 24", got)
	}
	// Never below one server; negatives clamp.
	if got := c.ServersNeeded(-5, -5); got != 1 {
		t.Errorf("degenerate load = %d, want 1", got)
	}
}

func TestConnectionServiceUtilization(t *testing.T) {
	c := DefaultConnectionService()
	u := c.Utilization(1e6, 100, 20)
	if u <= 0 || u > 1 {
		t.Errorf("utilization = %v out of (0,1]", u)
	}
	// More servers → lower per-server utilization.
	if c.Utilization(1e6, 100, 40) >= u {
		t.Error("doubling servers did not reduce utilization")
	}
	if c.Utilization(1e6, 100, 0) != 1 {
		t.Error("zero servers should saturate")
	}
	if c.Utilization(1e18, 1e18, 3) != 1 {
		t.Error("overload should clamp at 1")
	}
}

func TestConnectionServiceValidation(t *testing.T) {
	bad := DefaultConnectionService()
	bad.ConnsPerServer = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero connection capacity should error")
	}
	bad = DefaultConnectionService()
	bad.LoginCPUCost = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative cost should error")
	}
}

func TestSpreadLoad(t *testing.T) {
	caps := []float64{100, 100, 200}
	d := SpreadLoad(200, caps)
	// Proportional fill: everyone at 50 %.
	for i, u := range d.Utilizations {
		if math.Abs(u-0.5) > 1e-12 {
			t.Errorf("server %d utilization = %v, want 0.5", i, u)
		}
	}
	if d.Dropped != 0 {
		t.Errorf("dropped = %v, want 0", d.Dropped)
	}
	// Overload saturates everyone and drops the excess.
	d = SpreadLoad(500, caps)
	for i, u := range d.Utilizations {
		if u != 1 {
			t.Errorf("server %d utilization = %v, want 1", i, u)
		}
	}
	if math.Abs(d.Dropped-100) > 1e-12 {
		t.Errorf("dropped = %v, want 100", d.Dropped)
	}
	// No capacity at all: everything drops.
	d = SpreadLoad(50, []float64{0, 0})
	if d.Dropped != 50 {
		t.Errorf("dropped = %v, want 50", d.Dropped)
	}
	// Zero offered load.
	d = SpreadLoad(0, caps)
	for _, u := range d.Utilizations {
		if u != 0 {
			t.Error("idle spread should assign nothing")
		}
	}
}

func TestSpreadLoadConservesWork(t *testing.T) {
	check := func(rawOffered float64, rawCaps []float64) bool {
		offered := math.Abs(math.Mod(rawOffered, 1e6))
		caps := make([]float64, 0, len(rawCaps))
		for _, c := range rawCaps {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				continue
			}
			caps = append(caps, math.Abs(math.Mod(c, 1e4)))
		}
		d := SpreadLoad(offered, caps)
		var placed float64
		for i, u := range d.Utilizations {
			if u < 0 || u > 1 {
				return false
			}
			placed += u * caps[i]
		}
		return math.Abs(placed+d.Dropped-offered) < 1e-6*(1+offered)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPackLoad(t *testing.T) {
	caps := []float64{100, 100, 100}
	d, err := PackLoad(120, caps, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	// First server filled to target, second takes the remainder, third
	// stays empty — consolidation leaves idle servers to turn off.
	if math.Abs(d.Utilizations[0]-0.8) > 1e-12 {
		t.Errorf("server 0 = %v, want 0.8", d.Utilizations[0])
	}
	if math.Abs(d.Utilizations[1]-0.4) > 1e-12 {
		t.Errorf("server 1 = %v, want 0.4", d.Utilizations[1])
	}
	if d.Utilizations[2] != 0 {
		t.Errorf("server 2 = %v, want 0", d.Utilizations[2])
	}
	if d.Dropped != 0 {
		t.Errorf("dropped = %v", d.Dropped)
	}
}

func TestPackLoadTopsUpBeyondTarget(t *testing.T) {
	caps := []float64{100, 100}
	d, err := PackLoad(190, caps, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	var placed float64
	for i, u := range d.Utilizations {
		placed += u * caps[i]
		if u > 1 {
			t.Errorf("server %d over-filled: %v", i, u)
		}
	}
	if math.Abs(placed-190) > 1e-9 {
		t.Errorf("placed = %v, want 190", placed)
	}
	// True overload drops.
	d, err = PackLoad(250, caps, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Dropped-50) > 1e-9 {
		t.Errorf("dropped = %v, want 50", d.Dropped)
	}
}

func TestPackLoadValidation(t *testing.T) {
	if _, err := PackLoad(10, []float64{100}, 0); err == nil {
		t.Error("zero target should error")
	}
	if _, err := PackLoad(10, []float64{100}, 1.5); err == nil {
		t.Error("target > 1 should error")
	}
}

// TestPackLoadNeverExceedsFullUtilization is the float-rounding
// regression: the top-up pass divides c·headroom back by c, which can
// land an ulp above 1.0 (e.g. capacity 0.1, target ≈0.0103). No rounding
// may ever assign a server more than its whole capacity.
func TestPackLoadNeverExceedsFullUtilization(t *testing.T) {
	capacities := []float64{0.1, 0.3, 1.0 / 3, 0.123456, 701.77}
	for target := 0.01; target < 1.0; target += 0.00037 {
		total := 0.0
		for _, c := range capacities {
			total += c
		}
		d, err := PackLoad(total*2, capacities, target)
		if err != nil {
			t.Fatal(err)
		}
		for i, u := range d.Utilizations {
			if u > 1 {
				t.Fatalf("target %v: server %d utilization %.20f exceeds 1", target, i, u)
			}
		}
	}
}

func TestPackLoadZeroCapacityStaysIdle(t *testing.T) {
	caps := []float64{100, 0, 50, 0}
	d, err := PackLoad(200, caps, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if d.Utilizations[1] != 0 || d.Utilizations[3] != 0 {
		t.Errorf("zero-capacity servers got load: %v", d.Utilizations)
	}
	if d.Dropped != 50 {
		t.Errorf("dropped = %v, want 50", d.Dropped)
	}
}

func TestSpreadLoadZeroCapacityStaysIdle(t *testing.T) {
	caps := []float64{0, 80, 0, 20}
	d := SpreadLoad(50, caps)
	if d.Utilizations[0] != 0 || d.Utilizations[2] != 0 {
		t.Errorf("zero-capacity servers got load: %v", d.Utilizations)
	}
	if d.Dropped != 0 {
		t.Errorf("dropped = %v, want 0", d.Dropped)
	}
	if d.Utilizations[1] != 0.5 || d.Utilizations[3] != 0.5 {
		t.Errorf("proportional fill wrong: %v", d.Utilizations)
	}
}

func TestSpreadLoadDroppedExactOnOverload(t *testing.T) {
	caps := []float64{0.1, 0.2, 0.3}
	total := caps[0] + caps[1] + caps[2]
	offered := total + 0.25
	d := SpreadLoad(offered, caps)
	if got, want := d.Dropped, offered-total; got != want {
		t.Errorf("dropped = %.20f, want exactly %.20f", got, want)
	}
	for i, u := range d.Utilizations {
		if u != 1 {
			t.Errorf("server %d utilization %v, want exactly 1 at overload", i, u)
		}
	}
	// Negative capacities are treated as unusable, not as sinks.
	d = SpreadLoad(1, []float64{-5, 1})
	if d.Utilizations[0] != 0 {
		t.Errorf("negative-capacity server got load: %v", d.Utilizations)
	}
}

func TestSpreadLoadUtilizationNeverExceedsOne(t *testing.T) {
	caps := []float64{0.1, 0.2, 0.30000000000000004, 1e-9}
	for _, frac := range []float64{0.1, 0.5, 0.999999, 1.0, 1.5} {
		total := 0.0
		for _, c := range caps {
			total += c
		}
		d := SpreadLoad(total*frac, caps)
		for i, u := range d.Utilizations {
			if u > 1 {
				t.Errorf("frac %v: server %d utilization %.20f exceeds 1", frac, i, u)
			}
		}
	}
}
