// Package workload models the request-level demand placed on servers: a
// fluid queueing abstraction per server (utilization → response time), and
// the connection-intensive service model of Chen et al. [18] that the
// paper builds on — services like Messenger where the expensive operation
// is accepting a login while maintaining a connection is cheap, so
// provisioning must respect both a connection-capacity and a
// login-rate-capacity constraint.
package workload

import (
	"fmt"
	"math"
	"time"
)

// QueueModel converts server utilization into mean response time using an
// M/M/1-processor-sharing fluid approximation: R = S / (1 − ρ), clamped
// at a maximum that represents client timeouts. It is deliberately simple —
// the coordination experiments need the *shape* (delay blows up as ρ→1),
// not queueing-theoretic precision.
type QueueModel struct {
	// ServiceTime is the no-contention response time S.
	ServiceTime time.Duration
	// MaxResponse caps the modelled response (clients time out).
	MaxResponse time.Duration
}

// DefaultQueueModel is a typical interactive web service: 20 ms of work,
// 8 s client timeout.
func DefaultQueueModel() QueueModel {
	return QueueModel{ServiceTime: 20 * time.Millisecond, MaxResponse: 8 * time.Second}
}

// Validate checks the model.
func (q QueueModel) Validate() error {
	if q.ServiceTime <= 0 {
		return fmt.Errorf("workload: service time %v must be positive", q.ServiceTime)
	}
	if q.MaxResponse < q.ServiceTime {
		return fmt.Errorf("workload: max response %v below service time %v", q.MaxResponse, q.ServiceTime)
	}
	return nil
}

// Response returns the mean response time at utilization rho in [0,1].
func (q QueueModel) Response(rho float64) time.Duration {
	if rho < 0 {
		rho = 0
	}
	if rho >= 1 {
		return q.MaxResponse
	}
	r := time.Duration(float64(q.ServiceTime) / (1 - rho))
	if r > q.MaxResponse {
		return q.MaxResponse
	}
	return r
}

// UtilizationFor inverts Response: the utilization at which the model
// produces the target mean response time. Targets at or below the service
// time return 0; targets at or above MaxResponse return 1.
func (q QueueModel) UtilizationFor(target time.Duration) float64 {
	if target <= q.ServiceTime {
		return 0
	}
	if target >= q.MaxResponse {
		return 1
	}
	return 1 - float64(q.ServiceTime)/float64(target)
}

// ConnectionServiceConfig describes a connection-intensive Internet
// service (after [18]): logins are CPU-expensive, maintained connections
// are memory-bound.
type ConnectionServiceConfig struct {
	// ConnsPerServer is how many live connections one server sustains.
	ConnsPerServer float64
	// LoginsPerServerSec is how many new logins per second one server
	// absorbs (the binding constraint during flash crowds).
	LoginsPerServerSec float64
	// LoginCPUCost is the utilization contributed by one login/s.
	LoginCPUCost float64
	// ConnCPUCost is the utilization contributed by one held connection.
	ConnCPUCost float64
}

// DefaultConnectionService matches the scale of the paper's Figure 3:
// tens of servers per million connections with login spikes to 1400/s.
func DefaultConnectionService() ConnectionServiceConfig {
	return ConnectionServiceConfig{
		ConnsPerServer:     80_000,
		LoginsPerServerSec: 60,
		LoginCPUCost:       1.0 / 80, // logins saturate CPU before their rated 60/s only in bursts
		ConnCPUCost:        1.0 / 120_000,
	}
}

// Validate checks the configuration.
func (c ConnectionServiceConfig) Validate() error {
	if c.ConnsPerServer <= 0 || c.LoginsPerServerSec <= 0 {
		return fmt.Errorf("workload: connection service capacities must be positive")
	}
	if c.LoginCPUCost < 0 || c.ConnCPUCost < 0 {
		return fmt.Errorf("workload: connection service costs must be non-negative")
	}
	return nil
}

// ServersNeeded returns the minimum number of servers that can carry the
// given connection count and login rate — the max of the two constraints
// (plus any headroom the provisioning policy adds on top).
func (c ConnectionServiceConfig) ServersNeeded(connections, loginRate float64) int {
	if connections < 0 {
		connections = 0
	}
	if loginRate < 0 {
		loginRate = 0
	}
	byConns := math.Ceil(connections / c.ConnsPerServer)
	byLogins := math.Ceil(loginRate / c.LoginsPerServerSec)
	n := int(math.Max(byConns, byLogins))
	if n < 1 {
		n = 1
	}
	return n
}

// Utilization returns the per-server CPU utilization when the given load
// is spread evenly over n servers, clamped to [0,1].
func (c ConnectionServiceConfig) Utilization(connections, loginRate float64, n int) float64 {
	if n <= 0 {
		return 1
	}
	u := (connections*c.ConnCPUCost + loginRate*c.LoginCPUCost) / float64(n)
	return math.Max(0, math.Min(1, u))
}

// Dispatch splits an offered load (in capacity units/second) over servers
// proportionally to their available capacities, returning the utilization
// assigned to each and the load that could not be placed.
type Dispatch struct {
	// Utilizations[i] is the assigned utilization of server i.
	Utilizations []float64
	// Dropped is offered load that exceeded total capacity.
	Dropped float64
}

// SpreadLoad distributes `offered` load over servers with the given
// available capacities (units/second), filling proportionally — the
// water-filling behaviour of a least-loaded balancer in steady state.
func SpreadLoad(offered float64, capacities []float64) Dispatch {
	return SpreadLoadInto(make([]float64, len(capacities)), offered, capacities)
}

// SpreadPlan is the scalar outcome of a proportional-spread decision:
// the per-server fill fraction (applied to every server with positive
// capacity) and the load that could not be placed. Computing the plan is
// separated from applying it so a sharded dispatcher can take the same
// decision once, centrally, and apply the identical fill to each shard —
// bit-for-bit the arithmetic SpreadLoadInto performs serially.
type SpreadPlan struct {
	// Fill is the utilization assigned to every server whose capacity is
	// positive (zero-capacity servers always get 0).
	Fill float64
	// Dropped is offered load that exceeded total capacity.
	Dropped float64
}

// PlanSpread computes the proportional-spread decision for an offered
// load against the summed positive capacity.
func PlanSpread(offered, totalCapacity float64) SpreadPlan {
	if offered <= 0 {
		return SpreadPlan{}
	}
	if totalCapacity == 0 {
		return SpreadPlan{Dropped: offered}
	}
	if offered >= totalCapacity {
		return SpreadPlan{Fill: 1, Dropped: offered - totalCapacity}
	}
	return SpreadPlan{Fill: offered / totalCapacity}
}

// SpreadLoadInto is SpreadLoad writing into caller-owned scratch: dst
// must have len(capacities) entries and becomes the returned dispatch's
// Utilizations. Allocation-free, for per-tick dispatch paths.
func SpreadLoadInto(dst []float64, offered float64, capacities []float64) Dispatch {
	if len(dst) != len(capacities) {
		panic(fmt.Sprintf("workload: scratch sized %d for %d capacities", len(dst), len(capacities)))
	}
	for i := range dst {
		dst[i] = 0
	}
	d := Dispatch{Utilizations: dst}
	if offered <= 0 {
		return d
	}
	var total float64
	for _, c := range capacities {
		if c > 0 {
			total += c
		}
	}
	plan := PlanSpread(offered, total)
	d.Dropped = plan.Dropped
	if plan.Fill != 0 {
		for i, c := range capacities {
			if c > 0 {
				d.Utilizations[i] = plan.Fill
			}
		}
	}
	return d
}

// PackLoad fills servers one at a time to the target utilization before
// opening the next — the consolidating dispatch used with on/off policies
// (load "needs to be routed properly to remaining active systems", §4.3).
// Returns per-server utilizations and unplaced load.
func PackLoad(offered float64, capacities []float64, target float64) (Dispatch, error) {
	return PackLoadInto(make([]float64, len(capacities)), offered, capacities, target)
}

// PackLoadInto is PackLoad writing into caller-owned scratch: dst must
// have len(capacities) entries and becomes the returned dispatch's
// Utilizations. Allocation-free, for per-tick dispatch paths.
func PackLoadInto(dst []float64, offered float64, capacities []float64, target float64) (Dispatch, error) {
	if len(dst) != len(capacities) {
		panic(fmt.Sprintf("workload: scratch sized %d for %d capacities", len(dst), len(capacities)))
	}
	if target <= 0 || target > 1 {
		return Dispatch{}, fmt.Errorf("workload: pack target %v out of (0,1]", target)
	}
	for i := range dst {
		dst[i] = 0
	}
	d := Dispatch{Utilizations: dst}
	remaining := offered
	for i, c := range capacities {
		if remaining <= 0 || c <= 0 {
			continue
		}
		take := math.Min(remaining, c*target)
		d.Utilizations[i] = take / c
		remaining -= take
	}
	// Second pass: if target filling couldn't place everything, top up
	// to 100 %. The divide-back (c·headroom)/c can land an ulp above 1,
	// so clamp — a dispatcher must never assign more than a server's
	// whole capacity.
	if remaining > 0 {
		for i, c := range capacities {
			if remaining <= 0 || c <= 0 {
				continue
			}
			headroom := c * (1 - d.Utilizations[i])
			take := math.Min(remaining, headroom)
			d.Utilizations[i] = math.Min(1, d.Utilizations[i]+take/c)
			remaining -= take
		}
	}
	if remaining > 0 {
		d.Dropped = remaining
	}
	return d, nil
}
