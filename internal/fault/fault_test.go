package fault

import (
	"testing"
	"time"

	"repro/internal/cooling"
	"repro/internal/power"
	"repro/internal/sensornet"
	"repro/internal/server"
	"repro/internal/sim"
)

// collect subscribes a recording listener and returns the notice log.
func collect(in *Injector) *[]Notice {
	var log []Notice
	in.Subscribe(func(_ *sim.Engine, n Notice) { log = append(log, n) })
	return &log
}

func TestArmValidation(t *testing.T) {
	e := sim.NewEngine(1)
	in := NewInjector(e)
	cases := []struct {
		name string
		ev   Event
	}{
		{"utility unwired", Event{Kind: UtilityOutage, At: time.Minute}},
		{"room unwired", Event{Kind: CRACFailure, At: time.Minute}},
		{"servers unwired", Event{Kind: ServerCrash, At: time.Minute}},
		{"sensors unwired", Event{Kind: SensorDropout, At: time.Minute}},
		{"not injectable", Event{Kind: GeneratorOnline, At: time.Minute}},
	}
	for _, tc := range cases {
		if err := in.Arm([]Event{tc.ev}); err == nil {
			t.Errorf("%s: Arm accepted %+v", tc.name, tc.ev)
		}
	}
	room, err := cooling.TwoZoneRoom(0.8, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	in.WireRoom(room)
	if err := in.Arm([]Event{{Kind: CRACFailure, At: time.Minute, Index: 5}}); err == nil {
		t.Error("Arm accepted out-of-range CRAC index")
	}
	if err := in.Arm([]Event{{Kind: CRACFailure, At: -time.Minute}}); err == nil {
		t.Error("Arm accepted event in the past")
	}
	if in.Armed() != 0 {
		t.Errorf("failed Arm still armed %d events", in.Armed())
	}
}

func TestCRACFailureInjectAndRevert(t *testing.T) {
	e := sim.NewEngine(1)
	in := NewInjector(e)
	room, err := cooling.TwoZoneRoom(0.8, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	room.Attach(e)
	in.WireRoom(room)
	log := collect(in)
	if err := in.Arm([]Event{{Kind: CRACFailure, At: time.Hour, Duration: 2 * time.Hour, Index: 0}}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(90 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if !room.UnitFailed(0) || room.FailedUnits() != 1 {
		t.Fatal("unit 0 should be failed mid-window")
	}
	if err := e.Run(4 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if room.UnitFailed(0) {
		t.Fatal("unit 0 should have been repaired")
	}
	if in.Injected() != 1 || in.Reverted() != 1 || in.Count(CRACFailure) != 1 {
		t.Fatalf("counters: injected=%d reverted=%d", in.Injected(), in.Reverted())
	}
	want := []Notice{
		{Kind: CRACFailure, At: time.Hour, Start: true, Index: 0},
		{Kind: CRACFailure, At: 3 * time.Hour, Start: false, Index: 0},
	}
	if len(*log) != len(want) {
		t.Fatalf("notices: got %v want %v", *log, want)
	}
	for i, n := range *log {
		if n != want[i] {
			t.Errorf("notice %d: got %+v want %+v", i, n, want[i])
		}
	}
}

func TestServerCrashAndRecovery(t *testing.T) {
	e := sim.NewEngine(1)
	in := NewInjector(e)
	cfg := server.DefaultConfig()
	s := server.MustNew(cfg)
	in.WireServers([]*server.Server{s})
	log := collect(in)
	s.PowerOn(e)
	if err := in.Arm([]Event{
		{Kind: ServerCrash, At: 10 * time.Minute, Duration: 20 * time.Minute, Index: 0},
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(15 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if s.State() != server.StateOff || s.Crashes() != 1 {
		t.Fatalf("state %v crashes %d after injection", s.State(), s.Crashes())
	}
	if err := e.Run(31*time.Minute + cfg.BootDelay); err != nil {
		t.Fatal(err)
	}
	if s.State() != server.StateActive {
		t.Fatalf("state %v after recovery window + boot", s.State())
	}
	if len(*log) != 2 || !(*log)[0].Start || (*log)[1].Start {
		t.Fatalf("want crash+recovery notices, got %v", *log)
	}
}

func TestServerCrashNoOpWhenOff(t *testing.T) {
	e := sim.NewEngine(1)
	in := NewInjector(e)
	s := server.MustNew(server.DefaultConfig())
	in.WireServers([]*server.Server{s})
	log := collect(in)
	if err := in.Arm([]Event{{Kind: ServerCrash, At: time.Minute, Duration: time.Hour, Index: 0}}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(3 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if in.Injected() != 0 || len(*log) != 0 {
		t.Fatalf("crash of an Off server must be a no-op, got injected=%d notices=%v",
			in.Injected(), *log)
	}
}

func TestSensorFaultInjectAndRevert(t *testing.T) {
	e := sim.NewEngine(1)
	in := NewInjector(e)
	net, err := sensornet.NewNetwork(sensornet.DefaultNetworkConfig(4), e.RNG().Fork("net"))
	if err != nil {
		t.Fatal(err)
	}
	in.WireSensors(net)
	if err := in.Arm([]Event{
		{Kind: SensorDropout, At: time.Minute, Duration: time.Hour, Index: 1},
		{Kind: SensorStuck, At: time.Minute, Duration: time.Hour, Index: 2},
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if net.Fault(1) != sensornet.FaultDropout || net.Fault(2) != sensornet.FaultStuck {
		t.Fatalf("fault modes mid-window: %v %v", net.Fault(1), net.Fault(2))
	}
	if net.FaultyCount() != 2 {
		t.Fatalf("faulty count %d", net.FaultyCount())
	}
	if err := e.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if net.FaultyCount() != 0 {
		t.Fatalf("faults should have cleared, count %d", net.FaultyCount())
	}
	if in.Injected() != 2 || in.Reverted() != 2 {
		t.Fatalf("counters: injected=%d reverted=%d", in.Injected(), in.Reverted())
	}
}

// utilityFixture wires an injector with a battery sized for ~10 minutes
// at the constant 1 kW load.
func utilityFixture(t *testing.T, e *sim.Engine, failProb float64, retries int) (*Injector, *Utility) {
	t.Helper()
	in := NewInjector(e)
	bat, err := power.BatteryForAutonomy(1000, 10*time.Minute, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	u, err := in.WireUtility(UtilityConfig{
		Battery:          bat,
		LoadW:            func() float64 { return 1000 },
		GenStartDelay:    2 * time.Minute,
		GenStartFailProb: failProb,
		GenRetries:       retries,
		GenRetryBackoff:  time.Minute,
		Tick:             5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in, u
}

func TestUtilityRideThrough(t *testing.T) {
	e := sim.NewEngine(1)
	in, u := utilityFixture(t, e, 0, 0) // generator always starts
	log := collect(in)
	if err := in.Arm([]Event{{Kind: UtilityOutage, At: time.Hour, Duration: 30 * time.Minute}}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(3 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if u.UnservedJ() != 0 {
		t.Fatalf("ride-through dropped %v J", u.UnservedJ())
	}
	// The UPS carried ~2 minutes of 1 kW: 120 kJ within one tick's slop.
	if u.BridgedJ() < 115_000 || u.BridgedJ() > 130_000 {
		t.Fatalf("bridged %v J, want ~120 kJ", u.BridgedJ())
	}
	if u.GenAttempts() != 1 || u.GenFailures() != 0 {
		t.Fatalf("gen attempts %d failures %d", u.GenAttempts(), u.GenFailures())
	}
	if !u.GridUp() || u.GeneratorOn() {
		t.Fatal("grid should be restored, generator off")
	}
	// Battery recharges to full after restoration.
	if frac := u.cfg.Battery.ChargeFraction(); frac < 0.999 {
		t.Fatalf("battery at %v after recharge window", frac)
	}
	kinds := []Kind{UtilityOutage, GeneratorOnline, UtilityOutage}
	if len(*log) != len(kinds) {
		t.Fatalf("notices %v", *log)
	}
	for i, n := range *log {
		if n.Kind != kinds[i] {
			t.Fatalf("notice %d kind %v want %v", i, n.Kind, kinds[i])
		}
	}
}

func TestUtilityDepletionWhenGeneratorNeverStarts(t *testing.T) {
	e := sim.NewEngine(1)
	in, u := utilityFixture(t, e, 1, 2) // every start attempt fails
	log := collect(in)
	if err := in.Arm([]Event{{Kind: UtilityOutage, At: time.Hour, Duration: 30 * time.Minute}}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if u.GenAttempts() != 3 || u.GenFailures() != 3 {
		t.Fatalf("gen attempts %d failures %d, want bounded retry 3/3", u.GenAttempts(), u.GenFailures())
	}
	if u.UnservedJ() <= 0 {
		t.Fatal("depleted outage must drop load")
	}
	// ~10 minutes bridged, ~20 minutes unserved at 1 kW.
	if u.UnservedJ() < 1_000_000 {
		t.Fatalf("unserved %v J, want ~1.2 MJ", u.UnservedJ())
	}
	sawDepleted := false
	for _, n := range *log {
		if n.Kind == UPSDepleted && n.Start {
			sawDepleted = true
		}
	}
	if !sawDepleted {
		t.Fatal("missing UPSDepleted notice")
	}
}

func TestUtilityOverlappingOutagesCoalesce(t *testing.T) {
	e := sim.NewEngine(1)
	in, u := utilityFixture(t, e, 0, 0)
	if err := in.Arm([]Event{
		{Kind: UtilityOutage, At: time.Hour, Duration: 30 * time.Minute},
		{Kind: UtilityOutage, At: time.Hour + 10*time.Minute, Duration: 30 * time.Minute},
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(3 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if u.Outages() != 1 {
		t.Fatalf("overlapping outages should coalesce, got %d", u.Outages())
	}
	if !u.GridUp() {
		t.Fatal("grid should be up at the end")
	}
}

func TestGenerateScheduleDeterministicAndBounded(t *testing.T) {
	cfg := ScheduleConfig{
		Horizon:     12 * time.Hour,
		OutageEvery: 6 * time.Hour, OutageFor: 20 * time.Minute,
		CRACEvery: 4 * time.Hour, CRACFor: time.Hour,
		CrashEvery: 2 * time.Hour, CrashFor: 30 * time.Minute,
		SensorEvery: 3 * time.Hour, SensorFor: time.Hour,
		CRACs: 2, Servers: 8, Sensors: 4,
	}
	a, err := GenerateSchedule(sim.NewRNG(42), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSchedule(sim.NewRNG(42), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("expected a non-empty schedule at these rates")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed produced %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	last := time.Duration(-1)
	for _, ev := range a {
		if ev.At < last {
			t.Fatal("schedule not sorted by time")
		}
		last = ev.At
		if ev.At >= cfg.Horizon {
			t.Fatalf("event at %v beyond horizon", ev.At)
		}
		if ev.Duration < time.Second {
			t.Fatalf("duration %v below 1 s floor", ev.Duration)
		}
	}
	if _, err := GenerateSchedule(sim.NewRNG(1), ScheduleConfig{}); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := GenerateSchedule(sim.NewRNG(1), ScheduleConfig{
		Horizon: time.Hour, CrashEvery: time.Minute, Servers: 1,
	}); err == nil {
		t.Error("enabled class with zero mean duration accepted")
	}
}

func TestUtilityConfigValidation(t *testing.T) {
	bat, err := power.NewBattery(1000, 100, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	load := func() float64 { return 100 }
	good := UtilityConfig{Battery: bat, LoadW: load, Tick: time.Second}
	bad := []UtilityConfig{
		{LoadW: load, Tick: time.Second},
		{Battery: bat, Tick: time.Second},
		{Battery: bat, LoadW: load},
		{Battery: bat, LoadW: load, Tick: time.Second, GenStartDelay: -time.Second},
		{Battery: bat, LoadW: load, Tick: time.Second, GenStartFailProb: 1.5},
		{Battery: bat, LoadW: load, Tick: time.Second, GenRetries: -1},
		{Battery: bat, LoadW: load, Tick: time.Second, GenRetries: 2},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func domainFixture(t *testing.T, e *sim.Engine) (*Injector, []*server.Server) {
	t.Helper()
	in := NewInjector(e)
	servers := make([]*server.Server, 4)
	for i := range servers {
		servers[i] = server.MustNew(server.DefaultConfig())
		servers[i].PowerOn(e)
	}
	in.WireServers(servers)
	if err := in.WireDomains([][]int{{0, 1}, {2, 3}}); err != nil {
		t.Fatal(err)
	}
	return in, servers
}

func TestRackFailureKillsDomainTogether(t *testing.T) {
	e := sim.NewEngine(1)
	in, servers := domainFixture(t, e)
	log := collect(in)
	if err := in.Arm([]Event{
		{Kind: RackFailure, At: 10 * time.Minute, Duration: 30 * time.Minute, Index: 0},
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(15 * time.Minute); err != nil {
		t.Fatal(err)
	}
	// The whole domain dies as one event; the other rack is untouched.
	if servers[0].State() != server.StateOff || servers[1].State() != server.StateOff {
		t.Fatalf("domain 0 states %v/%v, want both off", servers[0].State(), servers[1].State())
	}
	if servers[2].State() != server.StateActive || servers[3].State() != server.StateActive {
		t.Fatalf("domain 1 states %v/%v, want both active", servers[2].State(), servers[3].State())
	}
	if in.Injected() != 1 || in.Count(RackFailure) != 1 {
		t.Fatalf("correlated kill must count once: injected %d", in.Injected())
	}
	// Shared repair clock: both machines come back from the one revert.
	boot := server.DefaultConfig().BootDelay
	if err := e.Run(41*time.Minute + boot); err != nil {
		t.Fatal(err)
	}
	if servers[0].State() != server.StateActive || servers[1].State() != server.StateActive {
		t.Fatalf("domain 0 states %v/%v after repair", servers[0].State(), servers[1].State())
	}
	if in.Reverted() != 1 {
		t.Fatalf("reverted %d, want 1 shared repair", in.Reverted())
	}
	if len(*log) != 2 || !(*log)[0].Start || (*log)[1].Start || (*log)[0].Index != 0 {
		t.Fatalf("want one start + one end notice for domain 0, got %v", *log)
	}
}

func TestRackFailureRepairSkipsRebootedServers(t *testing.T) {
	e := sim.NewEngine(1)
	in, servers := domainFixture(t, e)
	if err := in.Arm([]Event{
		{Kind: RackFailure, At: time.Minute, Duration: 30 * time.Minute, Index: 1},
	}); err != nil {
		t.Fatal(err)
	}
	// The MRM reboots one machine mid-repair; the shared repair must not
	// double-boot it.
	e.ScheduleAt(10*time.Minute, func(e *sim.Engine) { servers[2].PowerOn(e) })
	boot := server.DefaultConfig().BootDelay
	if err := e.Run(32*time.Minute + boot); err != nil {
		t.Fatal(err)
	}
	if servers[2].State() != server.StateActive || servers[3].State() != server.StateActive {
		t.Fatalf("states %v/%v after mixed recovery", servers[2].State(), servers[3].State())
	}
	if in.Reverted() != 1 {
		t.Fatalf("reverted %d, want 1", in.Reverted())
	}
}

func TestCapacityDipNotifiesAndCoalesces(t *testing.T) {
	e := sim.NewEngine(1)
	in := NewInjector(e)
	log := collect(in)
	if err := in.Arm([]Event{
		{Kind: CapacityDip, At: time.Minute, Duration: 10 * time.Minute, Frac: 0.7},
		{Kind: CapacityDip, At: 5 * time.Minute, Duration: time.Hour, Frac: 0.3}, // overlaps: coalesced
	}); err != nil {
		t.Fatal(err)
	}
	e.ScheduleAt(6*time.Minute, func(*sim.Engine) {
		if in.ActiveDip() != 0.7 {
			t.Errorf("active dip %v mid-event, want 0.7", in.ActiveDip())
		}
	})
	if err := e.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if in.ActiveDip() != 0 {
		t.Errorf("dip %v still active after revert", in.ActiveDip())
	}
	if in.Count(CapacityDip) != 1 || in.Reverted() != 1 {
		t.Errorf("overlapping dips must coalesce: injected %d reverted %d", in.Count(CapacityDip), in.Reverted())
	}
	if len(*log) != 2 || (*log)[0].Frac != 0.7 || (*log)[1].Frac != 0.7 || (*log)[1].Start {
		t.Errorf("want start+end notices carrying Frac 0.7, got %v", *log)
	}
}

func TestDomainAndDipArmValidation(t *testing.T) {
	e := sim.NewEngine(1)
	in := NewInjector(e)
	if err := in.WireDomains([][]int{{0}}); err == nil {
		t.Error("WireDomains without servers accepted")
	}
	in.WireServers([]*server.Server{server.MustNew(server.DefaultConfig())})
	if err := in.WireDomains([][]int{{}}); err == nil {
		t.Error("empty domain accepted")
	}
	if err := in.WireDomains([][]int{{0, 7}}); err == nil {
		t.Error("out-of-range domain index accepted")
	}
	if err := in.Arm([]Event{{Kind: RackFailure, At: time.Minute, Index: 0}}); err == nil {
		t.Error("rack failure without WireDomains accepted")
	}
	if err := in.WireDomains([][]int{{0}}); err != nil {
		t.Fatal(err)
	}
	if err := in.Arm([]Event{{Kind: RackFailure, At: time.Minute, Index: 3}}); err == nil {
		t.Error("domain index out of range accepted")
	}
	if err := in.Arm([]Event{{Kind: CapacityDip, At: time.Minute, Frac: 0}}); err == nil {
		t.Error("zero dip fraction accepted")
	}
	if err := in.Arm([]Event{{Kind: CapacityDip, At: time.Minute, Frac: 1.5}}); err == nil {
		t.Error("dip fraction above 1 accepted")
	}
}

func TestGenerateScheduleNewClassesPreserveStream(t *testing.T) {
	base := ScheduleConfig{
		Horizon:     12 * time.Hour,
		OutageEvery: 6 * time.Hour, OutageFor: 20 * time.Minute,
		CRACEvery: 4 * time.Hour, CRACFor: time.Hour,
		CrashEvery: 2 * time.Hour, CrashFor: 30 * time.Minute,
		SensorEvery: 3 * time.Hour, SensorFor: time.Hour,
		CRACs: 2, Servers: 8, Sensors: 4,
	}
	orig, err := GenerateSchedule(sim.NewRNG(42), base)
	if err != nil {
		t.Fatal(err)
	}
	ext := base
	ext.RackEvery, ext.RackFor, ext.Racks = 4*time.Hour, 30*time.Minute, 2
	ext.DipEvery, ext.DipFor, ext.DipFrac = 5*time.Hour, 10*time.Minute, 0.6
	got, err := GenerateSchedule(sim.NewRNG(42), ext)
	if err != nil {
		t.Fatal(err)
	}
	var racks, dips int
	var legacy []Event
	for _, ev := range got {
		switch ev.Kind {
		case RackFailure:
			racks++
			if ev.Index < 0 || ev.Index >= 2 {
				t.Fatalf("rack index %d out of range", ev.Index)
			}
		case CapacityDip:
			dips++
			if ev.Frac != 0.6 {
				t.Fatalf("dip frac %v, want 0.6", ev.Frac)
			}
		default:
			legacy = append(legacy, ev)
		}
	}
	if racks == 0 || dips == 0 {
		t.Fatalf("expected rack (%d) and dip (%d) events at these rates", racks, dips)
	}
	// The new classes draw after the original ones, so the legacy events
	// of an extended schedule are byte-identical to the original run.
	if len(legacy) != len(orig) {
		t.Fatalf("legacy events %d vs original %d", len(legacy), len(orig))
	}
	for i := range orig {
		if legacy[i] != orig[i] {
			t.Fatalf("event %d perturbed by new classes: %+v vs %+v", i, legacy[i], orig[i])
		}
	}
	if _, err := GenerateSchedule(sim.NewRNG(1), ScheduleConfig{
		Horizon: time.Hour, DipEvery: time.Minute, DipFor: time.Minute, DipFrac: 2,
	}); err == nil {
		t.Error("dip fraction above 1 accepted by generator")
	}
}
