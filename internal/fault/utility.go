package fault

import (
	"fmt"
	"time"

	"repro/internal/power"
	"repro/internal/sim"
)

// UtilityConfig shapes the §2.1 backup chain behind the utility feed:
// "power drawn from the grid is transformed and conditioned to charge the
// UPS system … diesel generators are started upon utility outages". The
// UPS battery bridges the critical load through the generator start
// window; a start attempt can fail and is retried with backoff.
type UtilityConfig struct {
	// Battery is the UPS energy store that bridges outages. Required.
	Battery *power.Battery
	// LoadW reports the critical load the feed must carry. Required.
	LoadW func() float64
	// GenStartDelay is the generator's start-and-transfer latency
	// (typically tens of seconds).
	GenStartDelay time.Duration
	// GenStartFailProb is the probability one start attempt fails —
	// the §2.1 risk the UPS autonomy is sized against.
	GenStartFailProb float64
	// GenRetries bounds retry attempts after the first failure.
	GenRetries int
	// GenRetryBackoff is the delay between start attempts.
	GenRetryBackoff time.Duration
	// Tick is the bridging/recharge integration step.
	Tick time.Duration
}

// Validate checks the configuration.
func (c UtilityConfig) Validate() error {
	if c.Battery == nil {
		return fmt.Errorf("fault: utility needs a battery")
	}
	if c.LoadW == nil {
		return fmt.Errorf("fault: utility needs a load function")
	}
	if c.GenStartDelay < 0 {
		return fmt.Errorf("fault: negative generator start delay")
	}
	if c.GenStartFailProb < 0 || c.GenStartFailProb > 1 {
		return fmt.Errorf("fault: generator start-failure probability %v out of [0,1]", c.GenStartFailProb)
	}
	if c.GenRetries < 0 {
		return fmt.Errorf("fault: negative generator retry count")
	}
	if c.GenRetries > 0 && c.GenRetryBackoff <= 0 {
		return fmt.Errorf("fault: retries need a positive backoff")
	}
	if c.Tick <= 0 {
		return fmt.Errorf("fault: utility tick %v must be positive", c.Tick)
	}
	return nil
}

// Utility is the runtime state machine of the utility feed, generator,
// and UPS bridge. It is driven by the Injector's UtilityOutage events.
type Utility struct {
	inj *Injector
	cfg UtilityConfig

	gridUp   bool
	genOn    bool
	depleted bool // UPSDepleted already announced for this outage

	outages     int
	genAttempts int
	genFailures int
	bridgedJ    float64 // energy served from the UPS store
	unservedJ   float64 // load energy dropped (store empty, no generator)

	bridgeCancel   sim.Cancel
	attemptCancel  sim.Cancel
	rechargeCancel sim.Cancel
}

// newUtility validates and builds the state machine.
func newUtility(inj *Injector, cfg UtilityConfig) (*Utility, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Utility{inj: inj, cfg: cfg, gridUp: true}, nil
}

// GridUp reports whether the utility feed is live.
func (u *Utility) GridUp() bool { return u.gridUp }

// GeneratorOn reports whether the backup generator carries the load.
func (u *Utility) GeneratorOn() bool { return u.genOn }

// Outages reports how many feed losses have begun.
func (u *Utility) Outages() int { return u.outages }

// GenAttempts and GenFailures report generator start attempts and the
// attempts that failed.
func (u *Utility) GenAttempts() int { return u.genAttempts }

// GenFailures reports failed generator start attempts.
func (u *Utility) GenFailures() int { return u.genFailures }

// BridgedJ reports the energy served from the UPS store across all
// outages so far.
func (u *Utility) BridgedJ() float64 { return u.bridgedJ }

// UnservedJ reports the load energy dropped because the store was empty
// and no generator was online — the ride-through failure measure.
func (u *Utility) UnservedJ() float64 { return u.unservedJ }

// beginOutage transitions the feed down. Reports false when already in
// an outage (overlapping events coalesce).
func (u *Utility) beginOutage(e *sim.Engine) bool {
	if !u.gridUp {
		return false
	}
	u.gridUp = false
	u.genOn = false
	u.depleted = false
	u.outages++
	if u.rechargeCancel != nil {
		u.rechargeCancel() // an outage interrupts any recharge in progress
		u.rechargeCancel = nil
	}
	// Generator start sequence with bounded retry/backoff.
	attempt := 0
	var try func(e *sim.Engine)
	try = func(e *sim.Engine) {
		u.attemptCancel = nil
		if u.gridUp || u.genOn {
			return // outage over or generator already up: stand down
		}
		attempt++
		u.genAttempts++
		if u.inj.rng.Bernoulli(u.cfg.GenStartFailProb) {
			u.genFailures++
			if attempt <= u.cfg.GenRetries {
				u.attemptCancel = e.ScheduleAfter(u.cfg.GenRetryBackoff, try)
			}
			return
		}
		u.genOn = true
		u.inj.record(GeneratorOnline)
		u.inj.notify(Notice{Kind: GeneratorOnline, At: e.Now(), Start: true, Index: -1})
	}
	u.attemptCancel = e.ScheduleAfter(u.cfg.GenStartDelay, try)
	// UPS bridge: integrate the critical load out of the store until the
	// generator is online or the grid returns.
	u.bridgeCancel = e.Every(u.cfg.Tick, func(e *sim.Engine) {
		if u.gridUp || u.genOn {
			return
		}
		load := u.cfg.LoadW()
		if load <= 0 {
			return
		}
		covered, ok := u.cfg.Battery.Discharge(load, u.cfg.Tick)
		u.bridgedJ += load * covered.Seconds()
		if !ok {
			u.unservedJ += load * (u.cfg.Tick - covered).Seconds()
			if !u.depleted {
				u.depleted = true
				u.inj.record(UPSDepleted)
				u.inj.notify(Notice{Kind: UPSDepleted, At: e.Now(), Start: true, Index: -1})
			}
		}
	})
	return true
}

// endOutage restores the feed and starts recharging the store. Reports
// false when the grid was already up.
func (u *Utility) endOutage(e *sim.Engine) bool {
	if u.gridUp {
		return false
	}
	u.gridUp = true
	u.genOn = false
	u.depleted = false
	if u.bridgeCancel != nil {
		u.bridgeCancel()
		u.bridgeCancel = nil
	}
	if u.attemptCancel != nil {
		u.attemptCancel()
		u.attemptCancel = nil
	}
	// Recharge from the grid until full; the loop cancels itself when
	// the battery stops drawing.
	var cancel sim.Cancel
	cancel = e.Every(u.cfg.Tick, func(e *sim.Engine) {
		if gridW := u.cfg.Battery.Recharge(u.cfg.Tick); gridW == 0 {
			cancel()
			u.rechargeCancel = nil
		}
	})
	u.rechargeCancel = cancel
	return true
}
