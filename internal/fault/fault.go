// Package fault makes infrastructure failures first-class simulation
// events. Section 2 of the paper grounds elastic power management in
// failure realities — utility outages bridged by the UPS until diesel
// generators start, N+1 cooling redundancy, thermal protection when CRAC
// capacity drops — yet an availability model alone never exercises the
// MRM layer's reactions. The Injector rides the sim.Engine event loop to
// schedule and revert faults mid-run, deterministically from the seed:
//
//   - utility feed loss (UPS battery bridging, generator start latency
//     with start-failure probability and bounded retry/backoff);
//   - single CRAC unit failure (reduced plant capacity, thermal ramp);
//   - server crash (abrupt power-off with state-machine-legal recovery);
//   - sensor faults (dropout and stuck-at readings).
//
// Listeners (the MRM layer's graceful-degradation responses) subscribe
// for Notice callbacks at injection and revert time. All randomness comes
// from a fork of the engine's seeded stream, so two runs with the same
// seed produce byte-identical fault schedules and telemetry.
package fault

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cooling"
	"repro/internal/sensornet"
	"repro/internal/server"
	"repro/internal/sim"
)

// Kind classifies a fault or fault-lifecycle notification.
type Kind int

// Fault kinds. The first five are injectable through Event; the last two
// are lifecycle notifications emitted by the utility state machine.
const (
	// UtilityOutage is a loss of the utility feed (§2.1): the UPS
	// bridges the critical load until generators start or the store
	// empties.
	UtilityOutage Kind = iota
	// CRACFailure takes one CRAC unit's cooling coil out of service.
	CRACFailure
	// ServerCrash drops one server abruptly to Off.
	ServerCrash
	// SensorDropout silences one sensor node.
	SensorDropout
	// SensorStuck latches one sensor node's reading.
	SensorStuck
	// RackFailure kills a whole wired failure domain (a rack or PDU
	// span) at once: every server in the group crashes together and
	// recovers together on one shared repair clock — the correlated
	// counterpart of independent ServerCrash events.
	RackFailure
	// CapacityDip announces a facility-level serving-capacity loss (a
	// borked deploy, a dependency brownout) without touching the power
	// substrate: listeners scale their capacity view by 1-Frac until the
	// dip reverts. The canonical retry-storm trigger.
	CapacityDip
	// GeneratorOnline is emitted (Start=true) when the backup generator
	// picks up the load during an outage. Not injectable.
	GeneratorOnline
	// UPSDepleted is emitted (Start=true) when the UPS store runs empty
	// with no generator online — the facility-drop event. Not injectable.
	UPSDepleted
)

// String renders the kind for reports and errors.
func (k Kind) String() string {
	switch k {
	case UtilityOutage:
		return "utility-outage"
	case CRACFailure:
		return "crac-failure"
	case ServerCrash:
		return "server-crash"
	case SensorDropout:
		return "sensor-dropout"
	case SensorStuck:
		return "sensor-stuck"
	case RackFailure:
		return "rack-failure"
	case CapacityDip:
		return "capacity-dip"
	case GeneratorOnline:
		return "generator-online"
	case UPSDepleted:
		return "ups-depleted"
	default:
		return fmt.Sprintf("fault-kind-%d", int(k))
	}
}

// Notice is one fault lifecycle notification delivered to listeners.
type Notice struct {
	// Kind classifies the event.
	Kind Kind
	// At is the virtual time of the notification.
	At time.Duration
	// Start is true at injection and false at revert/recovery.
	Start bool
	// Index identifies the target (CRAC unit, server, sensor node, or
	// failure domain); -1 for facility-wide kinds.
	Index int
	// Frac is the capacity fraction lost, set only for CapacityDip.
	Frac float64
}

// Listener receives fault notifications. Listeners run inside the event
// that injected or reverted the fault, so they may schedule follow-up
// events and mutate substrates — that is their purpose.
type Listener func(e *sim.Engine, n Notice)

// Event is one scheduled fault.
type Event struct {
	// Kind selects the fault class (must be injectable).
	Kind Kind
	// At is the injection time.
	At time.Duration
	// Duration is how long the fault persists before being reverted
	// (repair, recovery, grid restoration). Zero or negative means the
	// fault is permanent for the run.
	Duration time.Duration
	// Index is the target CRAC unit, server, sensor node, or failure
	// domain. Ignored for UtilityOutage and CapacityDip.
	Index int
	// Frac is the capacity fraction lost in (0,1], CapacityDip only.
	Frac float64
}

// Injector schedules faults onto an engine and notifies listeners.
// Construct with NewInjector, wire the substrates that can fail, then Arm
// a schedule (hand-written or from GenerateSchedule).
type Injector struct {
	engine    *sim.Engine
	rng       *sim.RNG
	listeners []Listener

	room    *cooling.Room
	servers []*server.Server
	net     *sensornet.Network
	utility *Utility
	domains [][]int
	dipFrac float64

	injected int
	reverted int
	byKind   map[Kind]int
	armed    int
}

// NewInjector builds an injector riding e. Its randomness is an
// independent fork of the engine's stream, so arming faults never
// perturbs workload or sensor draws.
func NewInjector(e *sim.Engine) *Injector {
	in := &Injector{
		engine: e,
		rng:    e.RNG().Fork("fault-injector"),
		byKind: make(map[Kind]int),
	}
	e.Register(in)
	return in
}

// Subscribe adds a listener for fault notifications, called in
// subscription order.
func (in *Injector) Subscribe(l Listener) { in.listeners = append(in.listeners, l) }

// WireRoom attaches the cooling room whose CRAC units can fail.
func (in *Injector) WireRoom(r *cooling.Room) { in.room = r }

// WireServers attaches the servers that can crash.
func (in *Injector) WireServers(ss []*server.Server) { in.servers = ss }

// WireSensors attaches the sensor network whose nodes can fail.
func (in *Injector) WireSensors(n *sensornet.Network) { in.net = n }

// WireDomains attaches correlated failure domains: each group lists
// server indices (into the WireServers slice) that share a rack or PDU
// and therefore die and recover together under RackFailure. Requires
// WireServers; every index must be in range.
func (in *Injector) WireDomains(groups [][]int) error {
	if len(in.servers) == 0 {
		return fmt.Errorf("fault: WireDomains requires WireServers first")
	}
	for g, group := range groups {
		if len(group) == 0 {
			return fmt.Errorf("fault: domain %d is empty", g)
		}
		for _, idx := range group {
			if idx < 0 || idx >= len(in.servers) {
				return fmt.Errorf("fault: domain %d server index %d out of range [0,%d)", g, idx, len(in.servers))
			}
		}
	}
	in.domains = groups
	return nil
}

// ActiveDip reports the capacity fraction currently lost to a
// CapacityDip event (0 when none is active).
func (in *Injector) ActiveDip() float64 { return in.dipFrac }

// WireUtility attaches the utility-feed state machine (UPS battery,
// generator start behaviour) used by UtilityOutage events.
func (in *Injector) WireUtility(cfg UtilityConfig) (*Utility, error) {
	u, err := newUtility(in, cfg)
	if err != nil {
		return nil, err
	}
	in.utility = u
	return u, nil
}

// Utility exposes the wired utility state machine (nil until wired).
func (in *Injector) Utility() *Utility { return in.utility }

// Injected reports how many faults have been injected so far.
func (in *Injector) Injected() int { return in.injected }

// Reverted reports how many injected faults have been reverted.
func (in *Injector) Reverted() int { return in.reverted }

// Count reports injections of one kind.
func (in *Injector) Count(k Kind) int { return in.byKind[k] }

// Armed reports how many events have been armed on the engine.
func (in *Injector) Armed() int { return in.armed }

// notify fans a notice out to the listeners.
func (in *Injector) notify(n Notice) {
	for _, l := range in.listeners {
		l(in.engine, n)
	}
}

// validate checks one event against the wired substrates.
func (in *Injector) validate(ev Event) error {
	switch ev.Kind {
	case UtilityOutage:
		if in.utility == nil {
			return fmt.Errorf("fault: utility outage armed without WireUtility")
		}
	case CRACFailure:
		if in.room == nil {
			return fmt.Errorf("fault: CRAC failure armed without WireRoom")
		}
		if ev.Index < 0 || ev.Index >= in.room.CRACs() {
			return fmt.Errorf("fault: CRAC index %d out of range [0,%d)", ev.Index, in.room.CRACs())
		}
	case ServerCrash:
		if len(in.servers) == 0 {
			return fmt.Errorf("fault: server crash armed without WireServers")
		}
		if ev.Index < 0 || ev.Index >= len(in.servers) {
			return fmt.Errorf("fault: server index %d out of range [0,%d)", ev.Index, len(in.servers))
		}
	case SensorDropout, SensorStuck:
		if in.net == nil {
			return fmt.Errorf("fault: sensor fault armed without WireSensors")
		}
	case RackFailure:
		if len(in.domains) == 0 {
			return fmt.Errorf("fault: rack failure armed without WireDomains")
		}
		if ev.Index < 0 || ev.Index >= len(in.domains) {
			return fmt.Errorf("fault: domain index %d out of range [0,%d)", ev.Index, len(in.domains))
		}
	case CapacityDip:
		if !(ev.Frac > 0 && ev.Frac <= 1) {
			return fmt.Errorf("fault: capacity dip fraction %v out of (0,1]", ev.Frac)
		}
	default:
		return fmt.Errorf("fault: kind %v is not injectable", ev.Kind)
	}
	if ev.At < in.engine.Now() {
		return fmt.Errorf("fault: event at %v before now %v", ev.At, in.engine.Now())
	}
	return nil
}

// Arm validates and schedules a fault program. Either every event is
// scheduled or none is.
func (in *Injector) Arm(events []Event) error {
	for i, ev := range events {
		if err := in.validate(ev); err != nil {
			return fmt.Errorf("fault: event %d: %w", i, err)
		}
	}
	for _, ev := range events {
		ev := ev
		in.engine.ScheduleAt(ev.At, func(e *sim.Engine) { in.apply(e, ev) })
		in.armed++
	}
	return nil
}

// apply injects one fault and, for finite durations, schedules its
// revert.
func (in *Injector) apply(e *sim.Engine, ev Event) {
	now := e.Now()
	switch ev.Kind {
	case UtilityOutage:
		if !in.utility.beginOutage(e) {
			return // already in an outage; overlapping events coalesce
		}
		in.record(ev.Kind)
		in.notify(Notice{Kind: UtilityOutage, At: now, Start: true, Index: -1})
		if ev.Duration > 0 {
			e.ScheduleAfter(ev.Duration, func(e *sim.Engine) {
				if in.utility.endOutage(e) {
					in.reverted++
					in.notify(Notice{Kind: UtilityOutage, At: e.Now(), Start: false, Index: -1})
				}
			})
		}
	case CRACFailure:
		if in.room.UnitFailed(ev.Index) {
			return // already failed; overlapping events coalesce
		}
		if err := in.room.SetUnitFailed(ev.Index, true); err != nil {
			panic(fmt.Sprintf("fault: %v", err)) // index validated at Arm
		}
		in.record(ev.Kind)
		in.notify(Notice{Kind: CRACFailure, At: now, Start: true, Index: ev.Index})
		if ev.Duration > 0 {
			e.ScheduleAfter(ev.Duration, func(e *sim.Engine) {
				if !in.room.UnitFailed(ev.Index) {
					return
				}
				_ = in.room.SetUnitFailed(ev.Index, false)
				in.reverted++
				in.notify(Notice{Kind: CRACFailure, At: e.Now(), Start: false, Index: ev.Index})
			})
		}
	case ServerCrash:
		s := in.servers[ev.Index]
		if !s.Crash(now) {
			return // off or shutting down: nothing to lose
		}
		in.record(ev.Kind)
		in.notify(Notice{Kind: ServerCrash, At: now, Start: true, Index: ev.Index})
		if ev.Duration > 0 {
			e.ScheduleAfter(ev.Duration, func(e *sim.Engine) {
				// Recover only a machine that is still down; the MRM may
				// have rebooted it already.
				if s.State() != server.StateOff {
					return
				}
				s.PowerOn(e)
				in.reverted++
				in.notify(Notice{Kind: ServerCrash, At: e.Now(), Start: false, Index: ev.Index})
			})
		}
	case RackFailure:
		// Kill the whole domain as one correlated event: every server
		// that can crash goes down now, and all of them share one repair
		// clock instead of ServerCrash's per-machine recovery.
		group := in.domains[ev.Index]
		downed := 0
		for _, idx := range group {
			if in.servers[idx].Crash(now) {
				downed++
			}
		}
		if downed == 0 {
			return // whole domain already dark; overlapping events coalesce
		}
		in.record(ev.Kind)
		in.notify(Notice{Kind: RackFailure, At: now, Start: true, Index: ev.Index})
		if ev.Duration > 0 {
			e.ScheduleAfter(ev.Duration, func(e *sim.Engine) {
				// Shared repair: bring back every machine in the domain
				// that is still down; the MRM may have rebooted some.
				recovered := 0
				for _, idx := range group {
					if in.servers[idx].State() == server.StateOff {
						in.servers[idx].PowerOn(e)
						recovered++
					}
				}
				if recovered == 0 {
					return
				}
				in.reverted++
				in.notify(Notice{Kind: RackFailure, At: e.Now(), Start: false, Index: ev.Index})
			})
		}
	case CapacityDip:
		if in.dipFrac > 0 {
			return // a dip is already active; overlapping events coalesce
		}
		in.dipFrac = ev.Frac
		in.record(ev.Kind)
		in.notify(Notice{Kind: CapacityDip, At: now, Start: true, Index: -1, Frac: ev.Frac})
		if ev.Duration > 0 {
			e.ScheduleAfter(ev.Duration, func(e *sim.Engine) {
				if in.dipFrac != ev.Frac {
					return
				}
				in.dipFrac = 0
				in.reverted++
				in.notify(Notice{Kind: CapacityDip, At: e.Now(), Start: false, Index: -1, Frac: ev.Frac})
			})
		}
	case SensorDropout, SensorStuck:
		mode := sensornet.FaultDropout
		if ev.Kind == SensorStuck {
			mode = sensornet.FaultStuck
		}
		if err := in.net.SetFault(ev.Index, mode); err != nil {
			panic(fmt.Sprintf("fault: %v", err)) // index validated at Arm
		}
		in.record(ev.Kind)
		in.notify(Notice{Kind: ev.Kind, At: now, Start: true, Index: ev.Index})
		if ev.Duration > 0 {
			e.ScheduleAfter(ev.Duration, func(e *sim.Engine) {
				if in.net.Fault(ev.Index) != mode {
					return // a later fault replaced this one
				}
				_ = in.net.SetFault(ev.Index, sensornet.FaultNone)
				in.reverted++
				in.notify(Notice{Kind: ev.Kind, At: e.Now(), Start: false, Index: ev.Index})
			})
		}
	}
}

// record tallies one injection.
func (in *Injector) record(k Kind) {
	in.injected++
	in.byKind[k]++
}

// CheckInvariants participates in the runtime invariant checker
// (structural invariant.Checkable): bookkeeping must stay consistent and
// the wired battery physically sane.
func (in *Injector) CheckInvariants(now time.Duration) error {
	if in.reverted > in.injected {
		return fmt.Errorf("fault: reverted %d > injected %d", in.reverted, in.injected)
	}
	if in.dipFrac < 0 || in.dipFrac > 1 {
		return fmt.Errorf("fault: active dip fraction %v out of [0,1]", in.dipFrac)
	}
	if u := in.utility; u != nil {
		if frac := u.cfg.Battery.ChargeFraction(); frac < -1e-9 || frac > 1+1e-9 {
			return fmt.Errorf("fault: battery charge fraction %v out of [0,1]", frac)
		}
		if u.genOn && u.gridUp {
			return fmt.Errorf("fault: generator online while grid is up")
		}
		if u.unservedJ < 0 || u.bridgedJ < 0 {
			return fmt.Errorf("fault: negative energy accounting (bridged %v, unserved %v)",
				u.bridgedJ, u.unservedJ)
		}
	}
	return nil
}

// ScheduleConfig shapes a randomized fault program for chaos soaking:
// Poisson arrivals per class (a zero mean inter-arrival disables the
// class), exponential repair times floored at one second.
type ScheduleConfig struct {
	// Horizon bounds injection times.
	Horizon time.Duration
	// OutageEvery, CRACEvery, CrashEvery, SensorEvery, RackEvery,
	// DipEvery are the mean inter-arrival times per fault class.
	OutageEvery, CRACEvery, CrashEvery, SensorEvery, RackEvery, DipEvery time.Duration
	// OutageFor, CRACFor, CrashFor, SensorFor, RackFor, DipFor are the
	// mean fault durations.
	OutageFor, CRACFor, CrashFor, SensorFor, RackFor, DipFor time.Duration
	// CRACs, Servers, Sensors, Racks size the index ranges targets are
	// drawn from (Racks counts wired failure domains).
	CRACs, Servers, Sensors, Racks int
	// DipFrac is the capacity fraction each generated dip removes, in
	// (0,1]. Zero defaults to 0.5.
	DipFrac float64
}

// GenerateSchedule draws a random fault program from rng. The result is
// sorted by injection time and fully determined by the stream, so a seed
// reproduces the chaos run exactly.
func GenerateSchedule(rng *sim.RNG, cfg ScheduleConfig) ([]Event, error) {
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("fault: schedule horizon %v must be positive", cfg.Horizon)
	}
	for _, pair := range []struct {
		name        string
		every, mean time.Duration
	}{
		{"outage", cfg.OutageEvery, cfg.OutageFor},
		{"crac", cfg.CRACEvery, cfg.CRACFor},
		{"crash", cfg.CrashEvery, cfg.CrashFor},
		{"sensor", cfg.SensorEvery, cfg.SensorFor},
		{"rack", cfg.RackEvery, cfg.RackFor},
		{"dip", cfg.DipEvery, cfg.DipFor},
	} {
		if pair.every > 0 && pair.mean <= 0 {
			return nil, fmt.Errorf("fault: %s class enabled with non-positive mean duration", pair.name)
		}
	}
	var events []Event
	draw := func(kind Kind, every, mean time.Duration, targets int) {
		if every <= 0 || targets <= 0 {
			return
		}
		rate := 1 / every.Seconds()
		for t := time.Duration(rng.Exp(rate) * float64(time.Second)); t < cfg.Horizon; {
			d := time.Duration(rng.Exp(1/mean.Seconds()) * float64(time.Second))
			if d < time.Second {
				d = time.Second
			}
			events = append(events, Event{Kind: kind, At: t, Duration: d, Index: rng.Intn(targets)})
			t += time.Duration(rng.Exp(rate) * float64(time.Second))
		}
	}
	draw(UtilityOutage, cfg.OutageEvery, cfg.OutageFor, 1)
	draw(CRACFailure, cfg.CRACEvery, cfg.CRACFor, cfg.CRACs)
	draw(ServerCrash, cfg.CrashEvery, cfg.CrashFor, cfg.Servers)
	if cfg.SensorEvery > 0 && cfg.Sensors > 0 {
		rate := 1 / cfg.SensorEvery.Seconds()
		for t := time.Duration(rng.Exp(rate) * float64(time.Second)); t < cfg.Horizon; {
			kind := SensorDropout
			if rng.Bernoulli(0.5) {
				kind = SensorStuck
			}
			d := time.Duration(rng.Exp(1/cfg.SensorFor.Seconds()) * float64(time.Second))
			if d < time.Second {
				d = time.Second
			}
			events = append(events, Event{Kind: kind, At: t, Duration: d, Index: rng.Intn(cfg.Sensors)})
			t += time.Duration(rng.Exp(rate) * float64(time.Second))
		}
	}
	// New classes draw after the originals so enabling them never
	// perturbs the RNG sequence of a pre-existing schedule.
	draw(RackFailure, cfg.RackEvery, cfg.RackFor, cfg.Racks)
	if cfg.DipEvery > 0 {
		frac := cfg.DipFrac
		if frac <= 0 {
			frac = 0.5
		}
		if frac > 1 {
			return nil, fmt.Errorf("fault: dip fraction %v out of (0,1]", cfg.DipFrac)
		}
		rate := 1 / cfg.DipEvery.Seconds()
		for t := time.Duration(rng.Exp(rate) * float64(time.Second)); t < cfg.Horizon; {
			d := time.Duration(rng.Exp(1/cfg.DipFor.Seconds()) * float64(time.Second))
			if d < time.Second {
				d = time.Second
			}
			events = append(events, Event{Kind: CapacityDip, At: t, Duration: d, Index: -1, Frac: frac})
			t += time.Duration(rng.Exp(rate) * float64(time.Second))
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events, nil
}
