// Package serve runs the simulation as a long-lived process and exposes
// it over HTTP: an OpenMetrics exposition at /metrics, a JSON snapshot
// API, and a Server-Sent Events stream of periodic snapshots.
//
// The paper's elastic power-management loops are continuous: operators
// watch fleet power, inlet temperatures, PUE, and carbon intensity as
// the facility tracks demand. Batch experiments (internal/exp) replay
// those dynamics and summarize; this package keeps the same engine alive
// on a paced virtual clock so the dynamics can be observed while they
// happen — with any OpenMetrics scraper, a curl of the snapshot API, or
// an EventSource in a browser.
//
// # Pacing and determinism
//
// A Server owns the sim.Engine and is its only driver. The Run loop
// advances the engine in short virtual slices sized so that virtual time
// tracks wall time times Options.Speedup. Slicing Engine.Run is
// outcome-neutral: the event order, every model state, and the telemetry
// frames are byte-identical to one monolithic Run over the same horizon
// (the engine's heap ordering and RNG consumption depend only on events,
// never on where Run calls pause). The pacer never injects Sync or
// Rebase calls of its own — those would perturb float summation order
// and break replay equivalence with batch mode.
//
// # Concurrency
//
// The engine and every model hanging off it are single-threaded by
// design. Server serializes access with one RWMutex: the pacer advances
// under the write lock, HTTP handlers copy a Snapshot out under the read
// lock and render outside it. Zone inlet temperatures are read from the
// open row of the facility's columnar telemetry frame (one memcpy via
// FrameWriter.LatestInto) and fleet/rack/zone power from the fleet's
// O(1) maintained aggregates, so a scrape costs microseconds and never
// re-aggregates per-server state.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/carbon"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Source bundles the live simulation objects a Server exposes. Engine
// and Fleet are required; the rest widen the exposition when present.
type Source struct {
	// Engine is the virtual clock and event kernel. The Server becomes
	// its sole driver; nothing else may call Run once serving starts.
	Engine *sim.Engine
	// Fleet is the server pool the power metrics come from.
	Fleet *core.Fleet
	// Manager, when set, adds policy mode, decision counts, and SLA
	// tracking to the exposition.
	Manager *core.Manager
	// DC, when set, adds the facility view: per-rack/zone power, zone
	// inlets from the telemetry frame, distribution losses, and PUE.
	DC *core.DataCenter
	// Degrader, when set, adds graceful-degradation state.
	Degrader *core.Degrader
	// Admission, when set, adds request-level user outcomes (admission,
	// rejection, degradation, per-class SLO misses). When nil, the
	// Manager's admission controller (if any) is used.
	Admission *workload.Admission
	// Retry, when set, adds closed-loop retry metrics (retried and
	// abandoned users, goodput, amplification, breaker state). When
	// nil, the Manager's retry loop (if any) is used; its wrapped
	// admission controller also backs the user-outcome view.
	Retry *workload.RetryLoop
}

// Options tunes the pacer and the exposition.
type Options struct {
	// Speedup is virtual seconds per wall second; must be positive.
	// 1 is real time; 3600 runs a day in 24 wall seconds.
	Speedup float64
	// Horizon stops the virtual clock there (0: run until ctx ends).
	Horizon time.Duration
	// Slice is the wall-clock pacing quantum (default 50ms). Virtual
	// time advances by Slice*Speedup per step.
	Slice time.Duration
	// EmitEvery is the SSE cadence in virtual time (default 15s). At
	// most one event is published per pacer step even when a step
	// crosses several cadence boundaries.
	EmitEvery time.Duration
	// Carbon is the grid-intensity model (zero value: DefaultModel).
	Carbon carbon.Model
	// OutsideC / OutsideRH are the outdoor conditions PUE is evaluated
	// at (defaults 18°C, 0.5 when both are zero).
	OutsideC  float64
	OutsideRH float64
}

func (o *Options) withDefaults() error {
	if o.Speedup <= 0 {
		return fmt.Errorf("serve: speedup %v must be positive", o.Speedup)
	}
	if o.Horizon < 0 {
		return fmt.Errorf("serve: negative horizon %v", o.Horizon)
	}
	if o.Slice == 0 {
		o.Slice = 50 * time.Millisecond
	}
	if o.Slice < 0 {
		return fmt.Errorf("serve: negative slice %v", o.Slice)
	}
	if o.EmitEvery == 0 {
		o.EmitEvery = 15 * time.Second
	}
	if o.EmitEvery < 0 {
		return fmt.Errorf("serve: negative emit period %v", o.EmitEvery)
	}
	if o.Carbon == (carbon.Model{}) {
		o.Carbon = carbon.DefaultModel()
	}
	if err := o.Carbon.Validate(); err != nil {
		return err
	}
	if o.OutsideC == 0 && o.OutsideRH == 0 {
		o.OutsideC, o.OutsideRH = 18, 0.5
	}
	if o.OutsideRH <= 0 || o.OutsideRH > 1 {
		return fmt.Errorf("serve: outside RH %v out of (0,1]", o.OutsideRH)
	}
	return nil
}

// Server paces a simulation and serves its state over HTTP.
type Server struct {
	// mu serializes the engine (write side: AdvanceTo) against snapshot
	// readers (read side: HTTP handlers). Everything reachable from src
	// is guarded by it.
	mu   sync.RWMutex
	src  Source
	opts Options

	meter *carbon.Meter

	// seq numbers published SSE events; scrapes counts /metrics hits.
	// Atomic because handlers read them under the shared read lock
	// while the pacer bumps seq between steps.
	seq     atomic.Uint64
	scrapes atomic.Uint64

	// nextEmit is the next virtual-time SSE boundary; pacer-only.
	nextEmit time.Duration

	sse       *broadcaster
	frameBufs sync.Pool
	bufs      sync.Pool
}

// NewServer validates the wiring and builds a server around the
// simulation. The engine may already have virtual time on the clock
// (e.g. a warm-up run); serving continues from there.
func NewServer(src Source, opts Options) (*Server, error) {
	if src.Engine == nil {
		return nil, fmt.Errorf("serve: nil engine")
	}
	if src.Fleet == nil {
		return nil, fmt.Errorf("serve: nil fleet")
	}
	if err := opts.withDefaults(); err != nil {
		return nil, err
	}
	meter, err := carbon.NewMeter(opts.Carbon)
	if err != nil {
		return nil, err
	}
	s := &Server{
		src:   src,
		opts:  opts,
		meter: meter,
		sse:   newBroadcaster(),
	}
	s.frameBufs.New = func() any { return []float64(nil) }
	s.bufs.New = func() any { return new(bytes.Buffer) }
	// Anchor the emissions meter and the SSE cadence at the current
	// clock so restarts from a warm engine do not back-fill.
	now := src.Engine.Now()
	if err := s.meter.Observe(now, src.Fleet.EnergyJ()); err != nil {
		return nil, err
	}
	s.nextEmit = now + opts.EmitEvery
	return s, nil
}

// Options reports the effective options after defaulting.
func (s *Server) Options() Options { return s.opts }

// AdvanceTo drives the engine to the target virtual time under the
// write lock and integrates emissions over the step. It is the only
// path that mutates simulation state; Run calls it on a wall-clock
// pace, and tests call it directly for deterministic stepping.
func (s *Server) AdvanceTo(target time.Duration) error {
	s.mu.Lock()
	if target < s.src.Engine.Now() {
		target = s.src.Engine.Now()
	}
	err := s.src.Engine.Run(target)
	if err == nil {
		err = s.meter.Observe(s.src.Engine.Now(), s.src.Fleet.EnergyJ())
	}
	s.mu.Unlock()
	if err != nil {
		return err
	}
	s.emitIfDue()
	return nil
}

// emitIfDue publishes one SSE snapshot when the virtual clock has
// crossed the next cadence boundary. Called only from the pacer
// goroutine (via AdvanceTo), so nextEmit needs no lock of its own.
func (s *Server) emitIfDue() {
	s.mu.RLock()
	now := s.src.Engine.Now()
	due := now >= s.nextEmit
	var snap Snapshot
	if due {
		snap = s.snapshotLocked()
	}
	s.mu.RUnlock()
	if !due {
		return
	}
	// Skip boundaries the step overran: one event per pacer step keeps
	// the wall-clock publish rate bounded at high speedups.
	for s.nextEmit <= now {
		s.nextEmit += s.opts.EmitEvery
	}
	snap.Seq = s.seq.Add(1)
	s.sse.publish(snap)
}

// Run paces the engine until ctx is cancelled or the horizon is
// reached. Virtual time tracks wall time times Speedup; if a slice
// takes longer to simulate than its wall quantum, the loop simply runs
// behind (it never skips virtual time to catch up, which would change
// outcomes versus batch mode).
func (s *Server) Run(ctx context.Context) error {
	tick := time.NewTicker(s.opts.Slice)
	defer tick.Stop()
	step := time.Duration(float64(s.opts.Slice) * s.opts.Speedup)
	if step <= 0 {
		step = 1
	}
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
		s.mu.RLock()
		target := s.src.Engine.Now() + step
		s.mu.RUnlock()
		if s.opts.Horizon > 0 && target > s.opts.Horizon {
			target = s.opts.Horizon
		}
		if err := s.AdvanceTo(target); err != nil {
			return err
		}
		if s.opts.Horizon > 0 {
			s.mu.RLock()
			done := s.src.Engine.Now() >= s.opts.Horizon
			s.mu.RUnlock()
			if done {
				return nil
			}
		}
	}
}

// Snapshot captures a consistent view of the simulation under the read
// lock.
func (s *Server) Snapshot() Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	snap := s.snapshotLocked()
	snap.Seq = s.seq.Load()
	return snap
}

// Shutdown ends the SSE side of the server gracefully: every connected
// stream receives one final "shutdown" event carrying the closing
// snapshot, then its channel is closed so the handler drains and
// returns. Scrape and snapshot endpoints keep answering until the HTTP
// server itself stops; call this before http.Server.Shutdown so stream
// handlers exit inside its drain window. Safe to call more than once.
func (s *Server) Shutdown() {
	snap := s.Snapshot()
	var final []byte
	if data, err := json.Marshal(snap); err == nil {
		var frame bytes.Buffer
		fmt.Fprintf(&frame, "id: %d\nevent: shutdown\ndata: %s\n\n", snap.Seq, data)
		final = frame.Bytes()
	}
	s.sse.shutdown(final)
}

// Handler returns the HTTP mux: /metrics (OpenMetrics), /api/v1/snapshot
// (JSON), /api/v1/stream (SSE), and /healthz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/api/v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("/api/v1/stream", s.handleStream)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}
