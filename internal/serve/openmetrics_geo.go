package serve

import "bytes"

// writeGeoMetrics renders the federation as one merged OpenMetrics
// exposition: a prelude of dcsim_geo_* roll-up families (federation
// size, barrier count, routing weights, global power/energy/grams),
// then every standard per-facility family with a site label on each
// sample. Families stay contiguous — sites are looped inside each
// family, never the other way around — so the output passes the same
// Lint the single-facility exposition does.
func writeGeoMetrics(buf *bytes.Buffer, snap *GeoSnapshot, scrapes uint64) {
	snaps := make([]labeledSnapshot, 0, len(snap.Sites))
	for i := range snap.Sites {
		snaps = append(snaps, labeledSnapshot{
			labels: []string{"site", snap.Sites[i].Site},
			snap:   &snap.Sites[i].Snapshot,
		})
	}
	prelude := func(w *omWriter) {
		w.family("dcsim_geo_sites", "gauge", "", "Federated sites behind the global router.")
		w.sample("dcsim_geo_sites", float64(len(snap.Sites)))
		w.family("dcsim_geo_epochs", "counter", "", "Routing barriers crossed by the federation.")
		w.sample("dcsim_geo_epochs_total", float64(snap.Epochs))
		w.family("dcsim_geo_route_mode", "gauge", "", "Active global routing mode (1 on the active mode).")
		w.sample("dcsim_geo_route_mode", 1, "mode", snap.Mode)
		w.family("dcsim_geo_route_weight", "gauge", "", "Share of global demand routed to each site.")
		for i := range snap.Sites {
			w.sample("dcsim_geo_route_weight", snap.Sites[i].RouteWeight, "site", snap.Sites[i].Site)
		}
		w.family("dcsim_geo_tz_offset_seconds", "gauge", "seconds", "Diurnal phase shift of each site's local demand.")
		for i := range snap.Sites {
			w.sample("dcsim_geo_tz_offset_seconds", snap.Sites[i].TZOffsetSeconds, "site", snap.Sites[i].Site)
		}
		w.family("dcsim_geo_power_watts", "gauge", "watts", "Federation-wide instantaneous IT power draw.")
		w.sample("dcsim_geo_power_watts", snap.PowerW)
		w.family("dcsim_geo_energy_joules", "counter", "joules", "Federation-wide cumulative fleet energy.")
		w.sample("dcsim_geo_energy_joules_total", snap.EnergyJoules)
		w.family("dcsim_geo_carbon_grams", "counter", "grams", "Federation-wide cumulative emissions in gCO2e.")
		w.sample("dcsim_geo_carbon_grams_total", snap.GramsCO2e)
	}
	writeLabeledMetrics(buf, snaps, scrapes, prelude)
}
