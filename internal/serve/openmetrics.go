package serve

import (
	"bytes"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// OpenMetrics exposition, written by hand: the repo is stdlib-only, so
// there is no client_golang to lean on. The subset implemented here is
// the text format v1.0.0 that scrapers actually require — HELP/TYPE
// (and UNIT where the name carries one) metadata, gauge and counter
// families, escaped label values, and the mandatory "# EOF" terminator.
// Lint below is the matching validator; CI pipes a live scrape through
// it so a regression in the writer fails the build, not the deploy.

// ContentType is the exposition content type for /metrics responses.
const ContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// omWriter accumulates one exposition. Families must be written as
// contiguous blocks (metadata then samples), which matches how
// writeMetrics drives it.
type omWriter struct {
	buf *bytes.Buffer
}

// family emits the metadata block. typ is "gauge" or "counter"; unit is
// optional and, per the spec, must be a suffix of the family name.
func (w *omWriter) family(name, typ, unit, help string) {
	fmt.Fprintf(w.buf, "# TYPE %s %s\n", name, typ)
	if unit != "" {
		fmt.Fprintf(w.buf, "# UNIT %s %s\n", name, unit)
	}
	fmt.Fprintf(w.buf, "# HELP %s %s\n", name, escapeHelp(help))
}

// sample emits one sample line. labels come as k, v pairs; for counter
// families the caller passes the full sample name (family + "_total").
func (w *omWriter) sample(name string, value float64, labels ...string) {
	w.buf.WriteString(name)
	if len(labels) > 0 {
		w.buf.WriteByte('{')
		for i := 0; i < len(labels); i += 2 {
			if i > 0 {
				w.buf.WriteByte(',')
			}
			w.buf.WriteString(labels[i])
			w.buf.WriteString(`="`)
			w.buf.WriteString(escapeLabel(labels[i+1]))
			w.buf.WriteByte('"')
		}
		w.buf.WriteByte('}')
	}
	w.buf.WriteByte(' ')
	w.buf.WriteString(formatValue(value))
	w.buf.WriteByte('\n')
}

func (w *omWriter) eof() { w.buf.WriteString("# EOF\n") }

func formatValue(v float64) string {
	// The spec forbids rendering NaN/Inf by accident; surface them
	// explicitly (scrapers treat NaN as a staleness marker).
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// writeMetrics renders a snapshot as one OpenMetrics exposition.
func writeMetrics(buf *bytes.Buffer, snap Snapshot, scrapes uint64) {
	w := &omWriter{buf: buf}

	w.family("dcsim_sim_time_seconds", "gauge", "seconds", "Virtual simulation clock since start.")
	w.sample("dcsim_sim_time_seconds", snap.SimTimeSeconds)
	w.family("dcsim_sim_speedup_ratio", "gauge", "", "Configured virtual-per-wall time ratio.")
	w.sample("dcsim_sim_speedup_ratio", snap.Speedup)
	w.family("dcsim_sim_events", "counter", "", "Simulation kernel events processed.")
	w.sample("dcsim_sim_events_total", float64(snap.EventsProcessed))
	w.family("dcsim_scrapes", "counter", "", "Scrapes of this endpoint, including this one.")
	w.sample("dcsim_scrapes_total", float64(scrapes))

	if snap.Mode != "" {
		w.family("dcsim_policy_mode", "gauge", "", "Active policy composition (1 on the active mode).")
		w.sample("dcsim_policy_mode", 1, "mode", snap.Mode)
		w.family("dcsim_decisions", "counter", "", "Manager decision cycles run.")
		w.sample("dcsim_decisions_total", float64(snap.Decisions))
		w.family("dcsim_sla_violation_ratio", "gauge", "", "Running fraction of decisions whose response exceeded the SLA.")
		w.sample("dcsim_sla_violation_ratio", snap.SLAViolationRate)
		w.family("dcsim_worst_response_seconds", "gauge", "seconds", "Worst response time observed so far.")
		w.sample("dcsim_worst_response_seconds", snap.WorstResponseSeconds)
	}

	w.family("dcsim_fleet_size", "gauge", "", "Total servers in the fleet.")
	w.sample("dcsim_fleet_size", float64(snap.FleetSize))
	w.family("dcsim_servers_on", "gauge", "", "Servers powered on (booting or active).")
	w.sample("dcsim_servers_on", float64(snap.OnCount))
	w.family("dcsim_servers_active", "gauge", "", "Servers active and serving load.")
	w.sample("dcsim_servers_active", float64(snap.ActiveCount))
	w.family("dcsim_fleet_pstate", "gauge", "", "Fleet-wide DVFS operating point index.")
	w.sample("dcsim_fleet_pstate", float64(snap.PState))
	w.family("dcsim_switches", "counter", "", "Cumulative server power transitions by direction.")
	w.sample("dcsim_switches_total", float64(snap.SwitchOns), "direction", "on")
	w.sample("dcsim_switches_total", float64(snap.SwitchOffs), "direction", "off")
	w.family("dcsim_fleet_power_watts", "gauge", "watts", "Instantaneous IT power draw of the fleet.")
	w.sample("dcsim_fleet_power_watts", snap.PowerW)
	w.family("dcsim_fleet_energy_joules", "counter", "joules", "Cumulative fleet energy through the last simulation event.")
	w.sample("dcsim_fleet_energy_joules_total", snap.EnergyJoules)
	w.family("dcsim_thermal_trips", "counter", "", "Protective thermal shutdowns.")
	w.sample("dcsim_thermal_trips_total", float64(snap.Trips))
	w.family("dcsim_rebase_drift_watts", "gauge", "watts", "Aggregate drift discarded at the last fleet rebase (pre-clamp).")
	w.sample("dcsim_rebase_drift_watts", snap.RebaseDriftW)
	w.family("dcsim_rebase_drift_max_watts", "gauge", "watts", "Largest rebase drift observed over the run.")
	w.sample("dcsim_rebase_drift_max_watts", snap.RebaseDriftMaxW)

	if f := snap.Facility; f != nil {
		w.family("dcsim_pue_ratio", "gauge", "", "Facility PUE at the configured outside conditions.")
		w.sample("dcsim_pue_ratio", f.PUE)
		w.family("dcsim_feed_power_watts", "gauge", "watts", "Utility draw at the facility feed.")
		w.sample("dcsim_feed_power_watts", f.FeedInputW)
		w.family("dcsim_distribution_loss_watts", "gauge", "watts", "Total loss through the power distribution tree.")
		w.sample("dcsim_distribution_loss_watts", f.DistLossW)
		w.family("dcsim_rack_power_watts", "gauge", "watts", "Instantaneous power draw per rack.")
		for i := range f.Racks {
			w.sample("dcsim_rack_power_watts", f.Racks[i].PowerW, "rack", f.Racks[i].Rack)
		}
		w.family("dcsim_zone_power_watts", "gauge", "watts", "Instantaneous power draw per cooling zone.")
		for i := range f.Zones {
			w.sample("dcsim_zone_power_watts", f.Zones[i].PowerW, "zone", f.Zones[i].Zone)
		}
		w.family("dcsim_zone_inlet_celsius", "gauge", "celsius", "Inlet temperature per cooling zone, from the telemetry frame.")
		for i := range f.Zones {
			w.sample("dcsim_zone_inlet_celsius", f.Zones[i].InletC, "zone", f.Zones[i].Zone)
		}
		w.family("dcsim_frame_age_seconds", "gauge", "seconds", "Virtual age of the telemetry frame row backing zone inlets (-1 before the first round).")
		age := -1.0
		if f.FrameAtSeconds >= 0 {
			age = snap.SimTimeSeconds - f.FrameAtSeconds
		}
		w.sample("dcsim_frame_age_seconds", age)
	}

	w.family("dcsim_carbon_intensity", "gauge", "", "Grid carbon intensity in gCO2e per kWh at the current virtual time.")
	w.sample("dcsim_carbon_intensity", snap.Carbon.IntensityGPerKWh)
	w.family("dcsim_carbon_rate", "gauge", "", "Instantaneous emission rate in gCO2e per hour at current draw.")
	w.sample("dcsim_carbon_rate", snap.Carbon.RateGPerHour)
	w.family("dcsim_carbon_grams", "counter", "grams", "Cumulative emissions in gCO2e since serving started.")
	w.sample("dcsim_carbon_grams_total", snap.Carbon.GramsTotal)

	if u := snap.Users; u != nil {
		w.family("dcsim_offered_users", "counter", "", "Cumulative fresh user arrivals offered to admission control.")
		w.sample("dcsim_offered_users_total", u.OfferedTotal)
		w.family("dcsim_admitted_users", "counter", "", "Cumulative users admitted to service.")
		w.sample("dcsim_admitted_users_total", u.AdmittedTotal)
		w.family("dcsim_rejected_users", "counter", "", "Cumulative users rejected by admission control.")
		w.sample("dcsim_rejected_users_total", u.RejectedTotal)
		w.family("dcsim_degraded_users", "counter", "", "Cumulative admitted users served below full quality.")
		w.sample("dcsim_degraded_users_total", u.DegradedTotal)
		w.family("dcsim_deferred_users", "gauge", "", "Users currently parked in the deferral backlog.")
		w.sample("dcsim_deferred_users", u.DeferredBacklog)
		w.family("dcsim_fair_share_q", "gauge", "", "Fair share Q = min(1, m/k) granted on the latest admission tick.")
		w.sample("dcsim_fair_share_q", u.FairShareQ)
		w.family("dcsim_user_shed_level", "gauge", "", "User-facing shedding ladder level (0 = normal fair share).")
		w.sample("dcsim_user_shed_level", float64(u.ShedLevel))
		w.family("dcsim_class_admitted_users", "counter", "", "Cumulative admitted users per service class.")
		for i := range u.Classes {
			w.sample("dcsim_class_admitted_users_total", u.Classes[i].AdmittedTotal, "class", u.Classes[i].Class)
		}
		w.family("dcsim_class_rejected_users", "counter", "", "Cumulative rejected users per service class.")
		for i := range u.Classes {
			w.sample("dcsim_class_rejected_users_total", u.Classes[i].RejectedTotal, "class", u.Classes[i].Class)
		}
		w.family("dcsim_slo_miss_ratio", "gauge", "", "Fraction of active ticks whose Erlang-C wait exceeded the class SLO.")
		for i := range u.Classes {
			w.sample("dcsim_slo_miss_ratio", u.Classes[i].SLOMissRate, "class", u.Classes[i].Class)
		}
		if rt := u.Retry; rt != nil {
			w.family("dcsim_fresh_users", "counter", "", "Cumulative first (non-retry) user arrivals into the closed loop.")
			w.sample("dcsim_fresh_users_total", rt.FreshTotal)
			w.family("dcsim_retried_users", "counter", "", "Cumulative retry re-presentations of turned-away users.")
			w.sample("dcsim_retried_users_total", rt.RetriedTotal)
			w.family("dcsim_abandoned_users", "counter", "", "Cumulative users who exhausted their retry attempts and gave up.")
			w.sample("dcsim_abandoned_users_total", rt.AbandonedTotal)
			w.family("dcsim_goodput_users", "counter", "", "Cumulative users that completed service (admitted net of SLO re-entries).")
			w.sample("dcsim_goodput_users_total", rt.GoodputTotal)
			w.family("dcsim_in_retry_users", "gauge", "", "Users currently parked in retry backoff.")
			w.sample("dcsim_in_retry_users", rt.InRetry)
			w.family("dcsim_retry_amplification", "gauge", "", "Cumulative attempts over fresh arrivals (1 = no retry inflation).")
			w.sample("dcsim_retry_amplification", rt.Amplification)
			w.family("dcsim_breaker_state", "gauge", "", "Admission circuit breaker state (1 on the active state).")
			for _, state := range []string{"closed", "open", "half-open"} {
				v := 0.0
				if rt.BreakerState == state {
					v = 1
				}
				w.sample("dcsim_breaker_state", v, "state", state)
			}
			w.family("dcsim_breaker_trips", "counter", "", "Circuit-breaker closed-to-open transitions.")
			w.sample("dcsim_breaker_trips_total", float64(rt.BreakerTrips))
		}
	}

	if d := snap.Degrader; d != nil {
		w.family("dcsim_degrader_ladder_stage", "gauge", "", "Current graceful-degradation ladder stage.")
		w.sample("dcsim_degrader_ladder_stage", float64(d.LadderStage))
		w.family("dcsim_degrader_cap_events", "counter", "", "Power-cap engagements.")
		w.sample("dcsim_degrader_cap_events_total", float64(d.CapEvents))
		w.family("dcsim_degrader_survival_sheds", "counter", "", "Survival-mode shed actions.")
		w.sample("dcsim_degrader_survival_sheds_total", float64(d.SurvivalSheds))
		w.family("dcsim_degrader_shed_servers", "counter", "", "Servers shed by degradation responses.")
		w.sample("dcsim_degrader_shed_servers_total", float64(d.ShedServers))
		w.family("dcsim_telemetry_fallbacks", "counter", "", "Telemetry-guard fallbacks to estimated zone maps.")
		w.sample("dcsim_telemetry_fallbacks_total", float64(d.Fallbacks))
		w.family("dcsim_telemetry_dark_rounds", "counter", "", "Consecutive telemetry-dark rounds observed.")
		w.sample("dcsim_telemetry_dark_rounds_total", float64(d.DarkRounds))
	}

	w.eof()
}

// Lint validates an exposition against the OpenMetrics text-format rules
// this package relies on: a single trailing "# EOF", metadata before
// samples, one contiguous block per family, counter samples suffixed
// _total with non-negative values, UNIT names carried as family-name
// suffixes, parseable sample values, and no duplicate (name, labels)
// series. It is intentionally strict: CI feeds live scrapes through it.
func Lint(exposition []byte) error {
	text := string(exposition)
	if !strings.HasSuffix(text, "# EOF\n") {
		return fmt.Errorf("openmetrics: exposition must end with %q", "# EOF\n")
	}
	lines := strings.Split(strings.TrimSuffix(text, "\n"), "\n")

	type familyMeta struct {
		typ     string
		unit    string
		help    bool
		samples int
		closed  bool
	}
	families := map[string]*familyMeta{}
	seen := map[string]bool{} // name{labels} dedup
	var current string        // family of the open block
	eofAt := -1

	openFamily := func(name string) *familyMeta {
		f := families[name]
		if f == nil {
			f = &familyMeta{}
			families[name] = f
		}
		return f
	}

	for i, line := range lines {
		if eofAt >= 0 {
			return fmt.Errorf("openmetrics: line %d: content after # EOF", i+1)
		}
		if line == "# EOF" {
			eofAt = i
			continue
		}
		if line == "" {
			return fmt.Errorf("openmetrics: line %d: empty line", i+1)
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 3 || parts[0] != "#" {
				return fmt.Errorf("openmetrics: line %d: malformed comment %q", i+1, line)
			}
			kw, name := parts[1], parts[2]
			f := openFamily(name)
			if name != current {
				if f.closed || f.samples > 0 {
					return fmt.Errorf("openmetrics: line %d: family %s reopened (blocks must be contiguous)", i+1, name)
				}
				if cur := families[current]; cur != nil {
					cur.closed = true
				}
				current = name
			}
			switch kw {
			case "TYPE":
				if f.typ != "" {
					return fmt.Errorf("openmetrics: line %d: duplicate TYPE for %s", i+1, name)
				}
				if f.samples > 0 {
					return fmt.Errorf("openmetrics: line %d: TYPE after samples for %s", i+1, name)
				}
				if len(parts) < 4 {
					return fmt.Errorf("openmetrics: line %d: TYPE missing value", i+1)
				}
				switch parts[3] {
				case "gauge", "counter", "unknown", "info", "stateset", "summary", "histogram", "gaugehistogram":
				default:
					return fmt.Errorf("openmetrics: line %d: unknown type %q", i+1, parts[3])
				}
				f.typ = parts[3]
			case "UNIT":
				if len(parts) < 4 || parts[3] == "" {
					return fmt.Errorf("openmetrics: line %d: UNIT missing value", i+1)
				}
				if !strings.HasSuffix(name, "_"+parts[3]) {
					return fmt.Errorf("openmetrics: line %d: unit %q is not a suffix of family %s", i+1, parts[3], name)
				}
				f.unit = parts[3]
			case "HELP":
				f.help = true
			default:
				return fmt.Errorf("openmetrics: line %d: unknown comment keyword %q", i+1, kw)
			}
			continue
		}

		// Sample line: name[{labels}] value [timestamp]
		name, rest, err := splitSampleName(line)
		if err != nil {
			return fmt.Errorf("openmetrics: line %d: %v", i+1, err)
		}
		family := name
		suffixed := false
		if strings.HasSuffix(name, "_total") || strings.HasSuffix(name, "_created") {
			base := strings.TrimSuffix(strings.TrimSuffix(name, "_total"), "_created")
			if f, ok := families[base]; ok && f.typ == "counter" {
				family, suffixed = base, true
			}
		}
		f, ok := families[family]
		if !ok || f.typ == "" {
			return fmt.Errorf("openmetrics: line %d: sample %s before its TYPE", i+1, name)
		}
		if family != current {
			return fmt.Errorf("openmetrics: line %d: sample %s outside its family block", i+1, name)
		}
		if f.typ == "counter" && !suffixed {
			return fmt.Errorf("openmetrics: line %d: counter sample %s must end in _total", i+1, name)
		}
		if !validMetricName(name) {
			return fmt.Errorf("openmetrics: line %d: invalid metric name %q", i+1, name)
		}
		labels, valuePart, err := splitLabels(rest)
		if err != nil {
			return fmt.Errorf("openmetrics: line %d: %v", i+1, err)
		}
		fields := strings.Fields(valuePart)
		if len(fields) < 1 || len(fields) > 2 {
			return fmt.Errorf("openmetrics: line %d: want value [timestamp], got %q", i+1, valuePart)
		}
		v, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return fmt.Errorf("openmetrics: line %d: bad value %q: %v", i+1, fields[0], err)
		}
		if f.typ == "counter" && (v < 0 || math.IsNaN(v)) {
			return fmt.Errorf("openmetrics: line %d: counter %s has non-monotone-capable value %v", i+1, name, v)
		}
		series := name + "{" + labels + "}"
		if seen[series] {
			return fmt.Errorf("openmetrics: line %d: duplicate series %s", i+1, series)
		}
		seen[series] = true
		f.samples++
	}

	if eofAt != len(lines)-1 {
		return fmt.Errorf("openmetrics: missing # EOF terminator")
	}
	for name, f := range families {
		if f.samples == 0 {
			return fmt.Errorf("openmetrics: family %s has metadata but no samples", name)
		}
		if !f.help {
			return fmt.Errorf("openmetrics: family %s missing HELP", name)
		}
	}
	return nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// splitSampleName splits "name{...} v" / "name v" into name and rest.
func splitSampleName(line string) (name, rest string, err error) {
	idx := strings.IndexAny(line, "{ ")
	if idx <= 0 {
		return "", "", fmt.Errorf("malformed sample %q", line)
	}
	return line[:idx], line[idx:], nil
}

// splitLabels consumes an optional {k="v",...} block, returning the
// canonical label text and the remaining value part.
func splitLabels(rest string) (labels, valuePart string, err error) {
	if !strings.HasPrefix(rest, "{") {
		return "", rest, nil
	}
	inQuote := false
	for i := 1; i < len(rest); i++ {
		switch rest[i] {
		case '\\':
			if inQuote {
				i++ // skip escaped char
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				body := rest[1:i]
				if err := checkLabelBody(body); err != nil {
					return "", "", err
				}
				return body, rest[i+1:], nil
			}
		}
	}
	return "", "", fmt.Errorf("unterminated label block %q", rest)
}

func checkLabelBody(body string) error {
	if body == "" {
		return nil
	}
	// Split on commas outside quotes.
	inQuote := false
	start := 0
	var pairs []string
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				pairs = append(pairs, body[start:i])
				start = i + 1
			}
		}
	}
	if inQuote {
		return fmt.Errorf("unterminated quote in labels %q", body)
	}
	pairs = append(pairs, body[start:])
	seen := map[string]bool{}
	for _, p := range pairs {
		eq := strings.Index(p, "=")
		if eq <= 0 {
			return fmt.Errorf("malformed label pair %q", p)
		}
		k, v := p[:eq], p[eq+1:]
		if !validMetricName(k) || strings.Contains(k, ":") {
			return fmt.Errorf("invalid label name %q", k)
		}
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return fmt.Errorf("label value %q not quoted", v)
		}
		if seen[k] {
			return fmt.Errorf("duplicate label %q", k)
		}
		seen[k] = true
	}
	return nil
}
