package serve

import (
	"bytes"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// OpenMetrics exposition, written by hand: the repo is stdlib-only, so
// there is no client_golang to lean on. The subset implemented here is
// the text format v1.0.0 that scrapers actually require — HELP/TYPE
// (and UNIT where the name carries one) metadata, gauge and counter
// families, escaped label values, and the mandatory "# EOF" terminator.
// Lint below is the matching validator; CI pipes a live scrape through
// it so a regression in the writer fails the build, not the deploy.

// ContentType is the exposition content type for /metrics responses.
const ContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// omWriter accumulates one exposition. Families must be written as
// contiguous blocks (metadata then samples), which matches how
// writeMetrics drives it.
type omWriter struct {
	buf *bytes.Buffer
}

// family emits the metadata block. typ is "gauge" or "counter"; unit is
// optional and, per the spec, must be a suffix of the family name.
func (w *omWriter) family(name, typ, unit, help string) {
	fmt.Fprintf(w.buf, "# TYPE %s %s\n", name, typ)
	if unit != "" {
		fmt.Fprintf(w.buf, "# UNIT %s %s\n", name, unit)
	}
	fmt.Fprintf(w.buf, "# HELP %s %s\n", name, escapeHelp(help))
}

// sample emits one sample line. labels come as k, v pairs; for counter
// families the caller passes the full sample name (family + "_total").
func (w *omWriter) sample(name string, value float64, labels ...string) {
	w.buf.WriteString(name)
	if len(labels) > 0 {
		w.buf.WriteByte('{')
		for i := 0; i < len(labels); i += 2 {
			if i > 0 {
				w.buf.WriteByte(',')
			}
			w.buf.WriteString(labels[i])
			w.buf.WriteString(`="`)
			w.buf.WriteString(escapeLabel(labels[i+1]))
			w.buf.WriteByte('"')
		}
		w.buf.WriteByte('}')
	}
	w.buf.WriteByte(' ')
	w.buf.WriteString(formatValue(value))
	w.buf.WriteByte('\n')
}

func (w *omWriter) eof() { w.buf.WriteString("# EOF\n") }

func formatValue(v float64) string {
	// The spec forbids rendering NaN/Inf by accident; surface them
	// explicitly (scrapers treat NaN as a staleness marker).
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// labeledSnapshot pairs one snapshot with the label set its samples
// carry: nil for the single-facility exposition, {"site", name} for each
// section of the geo federation's merged exposition.
type labeledSnapshot struct {
	labels []string
	snap   *Snapshot
}

// lbl combines a snapshot's base labels with sample-specific ones into a
// fresh slice (the base may be shared across samples).
func lbl(base []string, extra ...string) []string {
	if len(base) == 0 {
		return extra
	}
	out := make([]string, 0, len(base)+len(extra))
	out = append(out, base...)
	return append(out, extra...)
}

// writeMetrics renders a snapshot as one OpenMetrics exposition.
func writeMetrics(buf *bytes.Buffer, snap Snapshot, scrapes uint64) {
	writeLabeledMetrics(buf, []labeledSnapshot{{snap: &snap}}, scrapes, nil)
}

// writeLabeledMetrics renders one exposition covering every snapshot,
// each under its own label set. Families are emitted once as contiguous
// blocks (an OpenMetrics requirement) with the per-snapshot samples
// looped inside; a family whose slice is absent from every snapshot is
// omitted entirely. prelude, when set, writes caller-specific families
// (the geo federation's global roll-ups) before the shared ones.
func writeLabeledMetrics(buf *bytes.Buffer, snaps []labeledSnapshot, scrapes uint64, prelude func(*omWriter)) {
	w := &omWriter{buf: buf}
	if prelude != nil {
		prelude(w)
	}

	gaugeAll := func(name, unit, help string, val func(*Snapshot) float64) {
		w.family(name, "gauge", unit, help)
		for _, ls := range snaps {
			w.sample(name, val(ls.snap), ls.labels...)
		}
	}
	counterAll := func(name, unit, help string, val func(*Snapshot) float64) {
		w.family(name, "counter", unit, help)
		for _, ls := range snaps {
			w.sample(name+"_total", val(ls.snap), ls.labels...)
		}
	}

	gaugeAll("dcsim_sim_time_seconds", "seconds", "Virtual simulation clock since start.",
		func(s *Snapshot) float64 { return s.SimTimeSeconds })
	gaugeAll("dcsim_sim_speedup_ratio", "", "Configured virtual-per-wall time ratio.",
		func(s *Snapshot) float64 { return s.Speedup })
	counterAll("dcsim_sim_events", "", "Simulation kernel events processed.",
		func(s *Snapshot) float64 { return float64(s.EventsProcessed) })
	w.family("dcsim_scrapes", "counter", "", "Scrapes of this endpoint, including this one.")
	w.sample("dcsim_scrapes_total", float64(scrapes))

	anyMode := false
	for _, ls := range snaps {
		anyMode = anyMode || ls.snap.Mode != ""
	}
	if anyMode {
		w.family("dcsim_policy_mode", "gauge", "", "Active policy composition (1 on the active mode).")
		for _, ls := range snaps {
			if ls.snap.Mode != "" {
				w.sample("dcsim_policy_mode", 1, lbl(ls.labels, "mode", ls.snap.Mode)...)
			}
		}
		managed := func(name, typ, unit, help, sampleName string, val func(*Snapshot) float64) {
			w.family(name, typ, unit, help)
			for _, ls := range snaps {
				if ls.snap.Mode != "" {
					w.sample(sampleName, val(ls.snap), ls.labels...)
				}
			}
		}
		managed("dcsim_decisions", "counter", "", "Manager decision cycles run.", "dcsim_decisions_total",
			func(s *Snapshot) float64 { return float64(s.Decisions) })
		managed("dcsim_sla_violation_ratio", "gauge", "", "Running fraction of decisions whose response exceeded the SLA.", "dcsim_sla_violation_ratio",
			func(s *Snapshot) float64 { return s.SLAViolationRate })
		managed("dcsim_worst_response_seconds", "gauge", "seconds", "Worst response time observed so far.", "dcsim_worst_response_seconds",
			func(s *Snapshot) float64 { return s.WorstResponseSeconds })
	}

	gaugeAll("dcsim_fleet_size", "", "Total servers in the fleet.",
		func(s *Snapshot) float64 { return float64(s.FleetSize) })
	gaugeAll("dcsim_servers_on", "", "Servers powered on (booting or active).",
		func(s *Snapshot) float64 { return float64(s.OnCount) })
	gaugeAll("dcsim_servers_active", "", "Servers active and serving load.",
		func(s *Snapshot) float64 { return float64(s.ActiveCount) })
	gaugeAll("dcsim_fleet_pstate", "", "Fleet-wide DVFS operating point index.",
		func(s *Snapshot) float64 { return float64(s.PState) })
	w.family("dcsim_switches", "counter", "", "Cumulative server power transitions by direction.")
	for _, ls := range snaps {
		w.sample("dcsim_switches_total", float64(ls.snap.SwitchOns), lbl(ls.labels, "direction", "on")...)
		w.sample("dcsim_switches_total", float64(ls.snap.SwitchOffs), lbl(ls.labels, "direction", "off")...)
	}
	gaugeAll("dcsim_fleet_power_watts", "watts", "Instantaneous IT power draw of the fleet.",
		func(s *Snapshot) float64 { return s.PowerW })
	counterAll("dcsim_fleet_energy_joules", "joules", "Cumulative fleet energy through the last simulation event.",
		func(s *Snapshot) float64 { return s.EnergyJoules })
	counterAll("dcsim_thermal_trips", "", "Protective thermal shutdowns.",
		func(s *Snapshot) float64 { return float64(s.Trips) })
	gaugeAll("dcsim_rebase_drift_watts", "watts", "Aggregate drift discarded at the last fleet rebase (pre-clamp).",
		func(s *Snapshot) float64 { return s.RebaseDriftW })
	gaugeAll("dcsim_rebase_drift_max_watts", "watts", "Largest rebase drift observed over the run.",
		func(s *Snapshot) float64 { return s.RebaseDriftMaxW })

	anyFacility := false
	for _, ls := range snaps {
		anyFacility = anyFacility || ls.snap.Facility != nil
	}
	if anyFacility {
		facility := func(name, typ, unit, help string, emit func(ls labeledSnapshot, f *FacilitySnapshot)) {
			w.family(name, typ, unit, help)
			for _, ls := range snaps {
				if ls.snap.Facility != nil {
					emit(ls, ls.snap.Facility)
				}
			}
		}
		facility("dcsim_pue_ratio", "gauge", "", "Facility PUE at the configured outside conditions.",
			func(ls labeledSnapshot, f *FacilitySnapshot) { w.sample("dcsim_pue_ratio", f.PUE, ls.labels...) })
		facility("dcsim_feed_power_watts", "gauge", "watts", "Utility draw at the facility feed.",
			func(ls labeledSnapshot, f *FacilitySnapshot) {
				w.sample("dcsim_feed_power_watts", f.FeedInputW, ls.labels...)
			})
		facility("dcsim_distribution_loss_watts", "gauge", "watts", "Total loss through the power distribution tree.",
			func(ls labeledSnapshot, f *FacilitySnapshot) {
				w.sample("dcsim_distribution_loss_watts", f.DistLossW, ls.labels...)
			})
		facility("dcsim_rack_power_watts", "gauge", "watts", "Instantaneous power draw per rack.",
			func(ls labeledSnapshot, f *FacilitySnapshot) {
				for i := range f.Racks {
					w.sample("dcsim_rack_power_watts", f.Racks[i].PowerW, lbl(ls.labels, "rack", f.Racks[i].Rack)...)
				}
			})
		facility("dcsim_zone_power_watts", "gauge", "watts", "Instantaneous power draw per cooling zone.",
			func(ls labeledSnapshot, f *FacilitySnapshot) {
				for i := range f.Zones {
					w.sample("dcsim_zone_power_watts", f.Zones[i].PowerW, lbl(ls.labels, "zone", f.Zones[i].Zone)...)
				}
			})
		facility("dcsim_zone_inlet_celsius", "gauge", "celsius", "Inlet temperature per cooling zone, from the telemetry frame.",
			func(ls labeledSnapshot, f *FacilitySnapshot) {
				for i := range f.Zones {
					w.sample("dcsim_zone_inlet_celsius", f.Zones[i].InletC, lbl(ls.labels, "zone", f.Zones[i].Zone)...)
				}
			})
		facility("dcsim_frame_age_seconds", "gauge", "seconds", "Virtual age of the telemetry frame row backing zone inlets (-1 before the first round).",
			func(ls labeledSnapshot, f *FacilitySnapshot) {
				age := -1.0
				if f.FrameAtSeconds >= 0 {
					age = ls.snap.SimTimeSeconds - f.FrameAtSeconds
				}
				w.sample("dcsim_frame_age_seconds", age, ls.labels...)
			})
	}

	gaugeAll("dcsim_carbon_intensity", "", "Grid carbon intensity in gCO2e per kWh at the current virtual time.",
		func(s *Snapshot) float64 { return s.Carbon.IntensityGPerKWh })
	gaugeAll("dcsim_carbon_rate", "", "Instantaneous emission rate in gCO2e per hour at current draw.",
		func(s *Snapshot) float64 { return s.Carbon.RateGPerHour })
	counterAll("dcsim_carbon_grams", "grams", "Cumulative emissions in gCO2e since serving started.",
		func(s *Snapshot) float64 { return s.Carbon.GramsTotal })

	anyUsers := false
	anyRetry := false
	for _, ls := range snaps {
		if u := ls.snap.Users; u != nil {
			anyUsers = true
			anyRetry = anyRetry || u.Retry != nil
		}
	}
	if anyUsers {
		users := func(name, typ, unit, help string, emit func(ls labeledSnapshot, u *UsersSnapshot)) {
			w.family(name, typ, unit, help)
			for _, ls := range snaps {
				if ls.snap.Users != nil {
					emit(ls, ls.snap.Users)
				}
			}
		}
		users("dcsim_offered_users", "counter", "", "Cumulative fresh user arrivals offered to admission control.",
			func(ls labeledSnapshot, u *UsersSnapshot) {
				w.sample("dcsim_offered_users_total", u.OfferedTotal, ls.labels...)
			})
		users("dcsim_admitted_users", "counter", "", "Cumulative users admitted to service.",
			func(ls labeledSnapshot, u *UsersSnapshot) {
				w.sample("dcsim_admitted_users_total", u.AdmittedTotal, ls.labels...)
			})
		users("dcsim_rejected_users", "counter", "", "Cumulative users rejected by admission control.",
			func(ls labeledSnapshot, u *UsersSnapshot) {
				w.sample("dcsim_rejected_users_total", u.RejectedTotal, ls.labels...)
			})
		users("dcsim_degraded_users", "counter", "", "Cumulative admitted users served below full quality.",
			func(ls labeledSnapshot, u *UsersSnapshot) {
				w.sample("dcsim_degraded_users_total", u.DegradedTotal, ls.labels...)
			})
		users("dcsim_deferred_users", "gauge", "", "Users currently parked in the deferral backlog.",
			func(ls labeledSnapshot, u *UsersSnapshot) {
				w.sample("dcsim_deferred_users", u.DeferredBacklog, ls.labels...)
			})
		users("dcsim_fair_share_q", "gauge", "", "Fair share Q = min(1, m/k) granted on the latest admission tick.",
			func(ls labeledSnapshot, u *UsersSnapshot) { w.sample("dcsim_fair_share_q", u.FairShareQ, ls.labels...) })
		users("dcsim_user_shed_level", "gauge", "", "User-facing shedding ladder level (0 = normal fair share).",
			func(ls labeledSnapshot, u *UsersSnapshot) {
				w.sample("dcsim_user_shed_level", float64(u.ShedLevel), ls.labels...)
			})
		users("dcsim_class_admitted_users", "counter", "", "Cumulative admitted users per service class.",
			func(ls labeledSnapshot, u *UsersSnapshot) {
				for i := range u.Classes {
					w.sample("dcsim_class_admitted_users_total", u.Classes[i].AdmittedTotal, lbl(ls.labels, "class", u.Classes[i].Class)...)
				}
			})
		users("dcsim_class_rejected_users", "counter", "", "Cumulative rejected users per service class.",
			func(ls labeledSnapshot, u *UsersSnapshot) {
				for i := range u.Classes {
					w.sample("dcsim_class_rejected_users_total", u.Classes[i].RejectedTotal, lbl(ls.labels, "class", u.Classes[i].Class)...)
				}
			})
		users("dcsim_slo_miss_ratio", "gauge", "", "Fraction of active ticks whose Erlang-C wait exceeded the class SLO.",
			func(ls labeledSnapshot, u *UsersSnapshot) {
				for i := range u.Classes {
					w.sample("dcsim_slo_miss_ratio", u.Classes[i].SLOMissRate, lbl(ls.labels, "class", u.Classes[i].Class)...)
				}
			})
	}
	if anyRetry {
		retry := func(name, typ, unit, help string, emit func(ls labeledSnapshot, rt *RetrySnapshot)) {
			w.family(name, typ, unit, help)
			for _, ls := range snaps {
				if ls.snap.Users != nil && ls.snap.Users.Retry != nil {
					emit(ls, ls.snap.Users.Retry)
				}
			}
		}
		retry("dcsim_fresh_users", "counter", "", "Cumulative first (non-retry) user arrivals into the closed loop.",
			func(ls labeledSnapshot, rt *RetrySnapshot) {
				w.sample("dcsim_fresh_users_total", rt.FreshTotal, ls.labels...)
			})
		retry("dcsim_retried_users", "counter", "", "Cumulative retry re-presentations of turned-away users.",
			func(ls labeledSnapshot, rt *RetrySnapshot) {
				w.sample("dcsim_retried_users_total", rt.RetriedTotal, ls.labels...)
			})
		retry("dcsim_abandoned_users", "counter", "", "Cumulative users who exhausted their retry attempts and gave up.",
			func(ls labeledSnapshot, rt *RetrySnapshot) {
				w.sample("dcsim_abandoned_users_total", rt.AbandonedTotal, ls.labels...)
			})
		retry("dcsim_goodput_users", "counter", "", "Cumulative users that completed service (admitted net of SLO re-entries).",
			func(ls labeledSnapshot, rt *RetrySnapshot) {
				w.sample("dcsim_goodput_users_total", rt.GoodputTotal, ls.labels...)
			})
		retry("dcsim_in_retry_users", "gauge", "", "Users currently parked in retry backoff.",
			func(ls labeledSnapshot, rt *RetrySnapshot) {
				w.sample("dcsim_in_retry_users", rt.InRetry, ls.labels...)
			})
		retry("dcsim_retry_amplification", "gauge", "", "Cumulative attempts over fresh arrivals (1 = no retry inflation).",
			func(ls labeledSnapshot, rt *RetrySnapshot) {
				w.sample("dcsim_retry_amplification", rt.Amplification, ls.labels...)
			})
		retry("dcsim_breaker_state", "gauge", "", "Admission circuit breaker state (1 on the active state).",
			func(ls labeledSnapshot, rt *RetrySnapshot) {
				for _, state := range []string{"closed", "open", "half-open"} {
					v := 0.0
					if rt.BreakerState == state {
						v = 1
					}
					w.sample("dcsim_breaker_state", v, lbl(ls.labels, "state", state)...)
				}
			})
		retry("dcsim_breaker_trips", "counter", "", "Circuit-breaker closed-to-open transitions.",
			func(ls labeledSnapshot, rt *RetrySnapshot) {
				w.sample("dcsim_breaker_trips_total", float64(rt.BreakerTrips), ls.labels...)
			})
	}

	anyDegrader := false
	for _, ls := range snaps {
		anyDegrader = anyDegrader || ls.snap.Degrader != nil
	}
	if anyDegrader {
		degrader := func(name, typ, unit, help, sampleName string, val func(*DegraderSnapshot) float64) {
			w.family(name, typ, unit, help)
			for _, ls := range snaps {
				if ls.snap.Degrader != nil {
					w.sample(sampleName, val(ls.snap.Degrader), ls.labels...)
				}
			}
		}
		degrader("dcsim_degrader_ladder_stage", "gauge", "", "Current graceful-degradation ladder stage.", "dcsim_degrader_ladder_stage",
			func(d *DegraderSnapshot) float64 { return float64(d.LadderStage) })
		degrader("dcsim_degrader_cap_events", "counter", "", "Power-cap engagements.", "dcsim_degrader_cap_events_total",
			func(d *DegraderSnapshot) float64 { return float64(d.CapEvents) })
		degrader("dcsim_degrader_survival_sheds", "counter", "", "Survival-mode shed actions.", "dcsim_degrader_survival_sheds_total",
			func(d *DegraderSnapshot) float64 { return float64(d.SurvivalSheds) })
		degrader("dcsim_degrader_shed_servers", "counter", "", "Servers shed by degradation responses.", "dcsim_degrader_shed_servers_total",
			func(d *DegraderSnapshot) float64 { return float64(d.ShedServers) })
		degrader("dcsim_telemetry_fallbacks", "counter", "", "Telemetry-guard fallbacks to estimated zone maps.", "dcsim_telemetry_fallbacks_total",
			func(d *DegraderSnapshot) float64 { return float64(d.Fallbacks) })
		degrader("dcsim_telemetry_dark_rounds", "counter", "", "Consecutive telemetry-dark rounds observed.", "dcsim_telemetry_dark_rounds_total",
			func(d *DegraderSnapshot) float64 { return float64(d.DarkRounds) })
	}

	w.eof()
}

// Lint validates an exposition against the OpenMetrics text-format rules
// this package relies on: a single trailing "# EOF", metadata before
// samples, one contiguous block per family, counter samples suffixed
// _total with non-negative values, UNIT names carried as family-name
// suffixes, parseable sample values, and no duplicate (name, labels)
// series. It is intentionally strict: CI feeds live scrapes through it.
func Lint(exposition []byte) error {
	text := string(exposition)
	if !strings.HasSuffix(text, "# EOF\n") {
		return fmt.Errorf("openmetrics: exposition must end with %q", "# EOF\n")
	}
	lines := strings.Split(strings.TrimSuffix(text, "\n"), "\n")

	type familyMeta struct {
		typ     string
		unit    string
		help    bool
		samples int
		closed  bool
	}
	families := map[string]*familyMeta{}
	seen := map[string]bool{} // name{labels} dedup
	var current string        // family of the open block
	eofAt := -1

	openFamily := func(name string) *familyMeta {
		f := families[name]
		if f == nil {
			f = &familyMeta{}
			families[name] = f
		}
		return f
	}

	for i, line := range lines {
		if eofAt >= 0 {
			return fmt.Errorf("openmetrics: line %d: content after # EOF", i+1)
		}
		if line == "# EOF" {
			eofAt = i
			continue
		}
		if line == "" {
			return fmt.Errorf("openmetrics: line %d: empty line", i+1)
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 3 || parts[0] != "#" {
				return fmt.Errorf("openmetrics: line %d: malformed comment %q", i+1, line)
			}
			kw, name := parts[1], parts[2]
			f := openFamily(name)
			if name != current {
				if f.closed || f.samples > 0 {
					return fmt.Errorf("openmetrics: line %d: family %s reopened (blocks must be contiguous)", i+1, name)
				}
				if cur := families[current]; cur != nil {
					cur.closed = true
				}
				current = name
			}
			switch kw {
			case "TYPE":
				if f.typ != "" {
					return fmt.Errorf("openmetrics: line %d: duplicate TYPE for %s", i+1, name)
				}
				if f.samples > 0 {
					return fmt.Errorf("openmetrics: line %d: TYPE after samples for %s", i+1, name)
				}
				if len(parts) < 4 {
					return fmt.Errorf("openmetrics: line %d: TYPE missing value", i+1)
				}
				switch parts[3] {
				case "gauge", "counter", "unknown", "info", "stateset", "summary", "histogram", "gaugehistogram":
				default:
					return fmt.Errorf("openmetrics: line %d: unknown type %q", i+1, parts[3])
				}
				f.typ = parts[3]
			case "UNIT":
				if len(parts) < 4 || parts[3] == "" {
					return fmt.Errorf("openmetrics: line %d: UNIT missing value", i+1)
				}
				if !strings.HasSuffix(name, "_"+parts[3]) {
					return fmt.Errorf("openmetrics: line %d: unit %q is not a suffix of family %s", i+1, parts[3], name)
				}
				f.unit = parts[3]
			case "HELP":
				f.help = true
			default:
				return fmt.Errorf("openmetrics: line %d: unknown comment keyword %q", i+1, kw)
			}
			continue
		}

		// Sample line: name[{labels}] value [timestamp]
		name, rest, err := splitSampleName(line)
		if err != nil {
			return fmt.Errorf("openmetrics: line %d: %v", i+1, err)
		}
		family := name
		suffixed := false
		if strings.HasSuffix(name, "_total") || strings.HasSuffix(name, "_created") {
			base := strings.TrimSuffix(strings.TrimSuffix(name, "_total"), "_created")
			if f, ok := families[base]; ok && f.typ == "counter" {
				family, suffixed = base, true
			}
		}
		f, ok := families[family]
		if !ok || f.typ == "" {
			return fmt.Errorf("openmetrics: line %d: sample %s before its TYPE", i+1, name)
		}
		if family != current {
			return fmt.Errorf("openmetrics: line %d: sample %s outside its family block", i+1, name)
		}
		if f.typ == "counter" && !suffixed {
			return fmt.Errorf("openmetrics: line %d: counter sample %s must end in _total", i+1, name)
		}
		if !validMetricName(name) {
			return fmt.Errorf("openmetrics: line %d: invalid metric name %q", i+1, name)
		}
		labels, valuePart, err := splitLabels(rest)
		if err != nil {
			return fmt.Errorf("openmetrics: line %d: %v", i+1, err)
		}
		fields := strings.Fields(valuePart)
		if len(fields) < 1 || len(fields) > 2 {
			return fmt.Errorf("openmetrics: line %d: want value [timestamp], got %q", i+1, valuePart)
		}
		v, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return fmt.Errorf("openmetrics: line %d: bad value %q: %v", i+1, fields[0], err)
		}
		if f.typ == "counter" && (v < 0 || math.IsNaN(v)) {
			return fmt.Errorf("openmetrics: line %d: counter %s has non-monotone-capable value %v", i+1, name, v)
		}
		series := name + "{" + labels + "}"
		if seen[series] {
			return fmt.Errorf("openmetrics: line %d: duplicate series %s", i+1, series)
		}
		seen[series] = true
		f.samples++
	}

	if eofAt != len(lines)-1 {
		return fmt.Errorf("openmetrics: missing # EOF terminator")
	}
	for name, f := range families {
		if f.samples == 0 {
			return fmt.Errorf("openmetrics: family %s has metadata but no samples", name)
		}
		if !f.help {
			return fmt.Errorf("openmetrics: family %s missing HELP", name)
		}
	}
	return nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// splitSampleName splits "name{...} v" / "name v" into name and rest.
func splitSampleName(line string) (name, rest string, err error) {
	idx := strings.IndexAny(line, "{ ")
	if idx <= 0 {
		return "", "", fmt.Errorf("malformed sample %q", line)
	}
	return line[:idx], line[idx:], nil
}

// splitLabels consumes an optional {k="v",...} block, returning the
// canonical label text and the remaining value part.
func splitLabels(rest string) (labels, valuePart string, err error) {
	if !strings.HasPrefix(rest, "{") {
		return "", rest, nil
	}
	inQuote := false
	for i := 1; i < len(rest); i++ {
		switch rest[i] {
		case '\\':
			if inQuote {
				i++ // skip escaped char
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				body := rest[1:i]
				if err := checkLabelBody(body); err != nil {
					return "", "", err
				}
				return body, rest[i+1:], nil
			}
		}
	}
	return "", "", fmt.Errorf("unterminated label block %q", rest)
}

func checkLabelBody(body string) error {
	if body == "" {
		return nil
	}
	// Split on commas outside quotes.
	inQuote := false
	start := 0
	var pairs []string
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				pairs = append(pairs, body[start:i])
				start = i + 1
			}
		}
	}
	if inQuote {
		return fmt.Errorf("unterminated quote in labels %q", body)
	}
	pairs = append(pairs, body[start:])
	seen := map[string]bool{}
	for _, p := range pairs {
		eq := strings.Index(p, "=")
		if eq <= 0 {
			return fmt.Errorf("malformed label pair %q", p)
		}
		k, v := p[:eq], p[eq+1:]
		if !validMetricName(k) || strings.Contains(k, ":") {
			return fmt.Errorf("invalid label name %q", k)
		}
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return fmt.Errorf("label value %q not quoted", v)
		}
		if seen[k] {
			return fmt.Errorf("duplicate label %q", k)
		}
		seen[k] = true
	}
	return nil
}
