package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cooling"
	"repro/internal/core"
	"repro/internal/onoff"
	"repro/internal/power"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// testFacility assembles a small managed facility — the same wiring
// cmd/dcsim uses, shrunk for test speed — and returns it unstarted.
func testFacility(t *testing.T, seed int64, fleetSize int) (*sim.Engine, *core.Manager, *core.DataCenter) {
	t.Helper()
	srvCfg := server.DefaultConfig()
	e := sim.NewEngine(seed)
	perRack := 5
	racks := (fleetSize + perRack - 1) / perRack
	zones := (racks + 1) / 2
	roomCfg := cooling.RoomConfig{PhysicsTick: cooling.DefaultPhysicsTick}
	for z := 0; z < zones; z++ {
		roomCfg.Zones = append(roomCfg.Zones, cooling.DefaultZone(fmt.Sprintf("z%d", z)))
		roomCfg.Sensitivity = append(roomCfg.Sensitivity, []float64{0.9})
	}
	roomCfg.CRACs = []cooling.CRACConfig{cooling.DefaultCRAC("c0")}
	zoneOfRack := make([]int, racks)
	for r := range zoneOfRack {
		zoneOfRack[r] = r / 2
	}
	dc, err := core.NewDataCenter(e, core.DataCenterConfig{
		Name:           "serve-test",
		ServerConfig:   srvCfg,
		ServersPerRack: perRack,
		Topology: power.TopologyConfig{
			UPSCount: 1, PDUsPerUPS: 1, RacksPerPDU: racks,
			RackRatedW: float64(perRack) * srvCfg.PeakPower * 1.1, Oversubscription: 1,
		},
		Room:        roomCfg,
		ZoneOfRack:  zoneOfRack,
		Plant:       cooling.DefaultPlantConfig(),
		SampleEvery: 15 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dc.Attach(); err != nil {
		t.Fatal(err)
	}
	n := dc.Fleet().Size()
	sla := 100 * time.Millisecond
	mgr, err := core.NewManagerForFleet(e, core.ManagerConfig{
		ServerConfig:   srvCfg,
		FleetSize:      n,
		Queue:          workload.DefaultQueueModel(),
		SLA:            sla,
		DecisionPeriod: time.Minute,
		Mode:           core.ModeCoordinated,
		Trigger:        onoff.DelayTrigger{High: sla * 6 / 10, Low: sla / 4, StepUp: 1, StepDown: 1, Min: 1, Max: n},
		InitialOn:      n / 2,
	}, dc.Fleet(), func(now time.Duration) float64 {
		return 0.3 * float64(n) * srvCfg.Capacity
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, mgr, dc
}

func testServer(t *testing.T, seed int64, fleetSize int, opts Options) (*Server, *core.DataCenter) {
	t.Helper()
	e, mgr, dc := testFacility(t, seed, fleetSize)
	mgr.Start()
	s, err := NewServer(Source{Engine: e, Fleet: mgr.Fleet(), Manager: mgr, DC: dc}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, dc
}

// scrape fetches one /metrics exposition and returns it parsed into a
// sample map (series -> value) after running it through the linter.
func scrape(t *testing.T, url string) (map[string]float64, string) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := Lint(body); err != nil {
		t.Fatalf("exposition fails lint: %v\n%s", err, body)
	}
	samples := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad sample line %q: %v", line, err)
		}
		samples[line[:sp]] = v
	}
	return samples, string(body)
}

// TestServeEndToEnd drives a facility through virtual hours and checks
// the exposition: parseable, lint-clean, carrying the full metric set,
// with counters monotone across scrapes.
func TestServeEndToEnd(t *testing.T) {
	s, dc := testServer(t, 1, 10, Options{Speedup: 3600})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if err := s.AdvanceTo(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	first, body := scrape(t, ts.URL)
	for _, name := range []string{
		"dcsim_sim_time_seconds",
		"dcsim_sim_events_total",
		"dcsim_fleet_power_watts",
		"dcsim_fleet_energy_joules_total",
		"dcsim_servers_active",
		"dcsim_thermal_trips_total",
		"dcsim_rebase_drift_watts",
		"dcsim_rebase_drift_max_watts",
		"dcsim_pue_ratio",
		"dcsim_feed_power_watts",
		"dcsim_carbon_intensity",
		"dcsim_carbon_grams_total",
		"dcsim_frame_age_seconds",
		`dcsim_policy_mode{mode="coordinated"}`,
		`dcsim_switches_total{direction="on"}`,
	} {
		if _, ok := first[name]; !ok {
			t.Errorf("exposition missing %s\n%s", name, body)
		}
	}
	if got := first["dcsim_sim_time_seconds"]; got != 7200 {
		t.Errorf("sim time = %v, want 7200", got)
	}
	if first["dcsim_fleet_power_watts"] <= 0 {
		t.Error("fleet power should be positive with servers active")
	}
	if first["dcsim_pue_ratio"] <= 1 {
		t.Errorf("PUE = %v, want > 1", first["dcsim_pue_ratio"])
	}
	// Zone series carry the room's zone names as labels.
	for z := 0; z < dc.Room().Zones(); z++ {
		key := fmt.Sprintf("dcsim_zone_inlet_celsius{zone=%q}", dc.Room().ZoneName(z))
		if v, ok := first[key]; !ok || v <= 0 {
			t.Errorf("zone inlet %s missing or non-physical (%v)", key, v)
		}
	}
	// Frame-backed inlets: the frame row must be fresh (≤ one sample
	// period old).
	if age := first["dcsim_frame_age_seconds"]; age < 0 || age > dc.SampleEvery().Seconds() {
		t.Errorf("frame age = %v s, want within [0, %v]", age, dc.SampleEvery().Seconds())
	}

	if err := s.AdvanceTo(4 * time.Hour); err != nil {
		t.Fatal(err)
	}
	second, _ := scrape(t, ts.URL)
	for _, counter := range []string{
		"dcsim_sim_events_total",
		"dcsim_fleet_energy_joules_total",
		"dcsim_carbon_grams_total",
		"dcsim_decisions_total",
		"dcsim_scrapes_total",
	} {
		if second[counter] <= first[counter] {
			t.Errorf("%s not monotone: %v -> %v", counter, first[counter], second[counter])
		}
	}
	if second["dcsim_thermal_trips_total"] < first["dcsim_thermal_trips_total"] {
		t.Error("trips counter decreased")
	}

	// JSON snapshot agrees with the exposition.
	resp, err := http.Get(ts.URL + "/api/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.SimTimeSeconds != second["dcsim_sim_time_seconds"] {
		t.Errorf("snapshot sim time %v != metrics %v", snap.SimTimeSeconds, second["dcsim_sim_time_seconds"])
	}
	if snap.EnergyJoules != second["dcsim_fleet_energy_joules_total"] {
		t.Errorf("snapshot energy %v != metrics %v", snap.EnergyJoules, second["dcsim_fleet_energy_joules_total"])
	}
	if snap.Facility == nil || len(snap.Facility.Zones) != dc.Room().Zones() {
		t.Fatalf("snapshot facility zones = %+v", snap.Facility)
	}
}

// TestSSEStream subscribes to /api/v1/stream, advances virtual time
// across several emit boundaries, and checks the events arrive ordered
// and well-formed.
func TestSSEStream(t *testing.T) {
	s, _ := testServer(t, 2, 10, Options{Speedup: 3600, EmitEvery: 15 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/api/v1/stream", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	type event struct {
		id   uint64
		snap Snapshot
	}
	events := make(chan event, 32)
	go func() {
		defer close(events)
		sc := bufio.NewScanner(resp.Body)
		var ev event
		var sawData bool
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "id: "):
				id, err := strconv.ParseUint(line[4:], 10, 64)
				if err != nil {
					t.Errorf("bad id line %q", line)
					return
				}
				ev.id = id
			case line == "event: snapshot":
			case strings.HasPrefix(line, "data: "):
				if err := json.Unmarshal([]byte(line[6:]), &ev.snap); err != nil {
					t.Errorf("bad data line: %v", err)
					return
				}
				sawData = true
			case line == "":
				if sawData {
					events <- ev
					ev, sawData = event{}, false
				}
			default:
				t.Errorf("unexpected SSE line %q", line)
				return
			}
		}
	}()

	// First event is the immediate current-state snapshot.
	var first event
	select {
	case first = <-events:
	case <-ctx.Done():
		t.Fatal("no initial SSE event")
	}

	// Cross 8 emit boundaries; one event per AdvanceTo step.
	for i := 1; i <= 8; i++ {
		if err := s.AdvanceTo(time.Duration(i) * 15 * time.Second); err != nil {
			t.Fatal(err)
		}
	}

	lastID, lastSim := first.id, first.snap.SimTimeSeconds
	for n := 0; n < 8; n++ {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatal("stream closed early")
			}
			if ev.id <= lastID {
				t.Fatalf("event ids not increasing: %d after %d", ev.id, lastID)
			}
			if ev.snap.SimTimeSeconds < lastSim {
				t.Fatalf("sim time went backwards: %v after %v", ev.snap.SimTimeSeconds, lastSim)
			}
			if ev.snap.Seq != ev.id {
				t.Fatalf("event id %d != snapshot seq %d", ev.id, ev.snap.Seq)
			}
			lastID, lastSim = ev.id, ev.snap.SimTimeSeconds
		case <-ctx.Done():
			t.Fatalf("timed out after %d events", n)
		}
	}
}

// TestScrapeWhileSimulating is the -race soak: the pacer advances the
// engine while scrapers hammer every endpoint concurrently.
func TestScrapeWhileSimulating(t *testing.T) {
	s, _ := testServer(t, 3, 10, Options{
		Speedup:   7200,
		Horizon:   2 * time.Hour,
		Slice:     2 * time.Millisecond,
		EmitEvery: 15 * time.Second,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	paceDone := make(chan error, 1)
	go func() { paceDone <- s.Run(ctx) }()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastEnergy float64
			for {
				select {
				case <-stop:
					return
				default:
				}
				samples, _ := scrape(t, ts.URL)
				if e := samples["dcsim_fleet_energy_joules_total"]; e < lastEnergy {
					t.Errorf("energy counter regressed: %v -> %v", lastEnergy, e)
					return
				} else {
					lastEnergy = e
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(ts.URL + "/api/v1/snapshot")
			if err != nil {
				t.Error(err)
				return
			}
			var snap Snapshot
			err = json.NewDecoder(resp.Body).Decode(&snap)
			resp.Body.Close()
			if err != nil {
				t.Error(err)
				return
			}
			if snap.Facility != nil {
				for _, z := range snap.Facility.Zones {
					if z.InletC < -50 || z.InletC > 200 {
						t.Errorf("non-physical inlet %v (torn read?)", z.InletC)
						return
					}
				}
			}
		}
	}()

	err := <-paceDone
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("pacer: %v", err)
	}
	snap := s.Snapshot()
	if snap.SimTimeSeconds != (2 * time.Hour).Seconds() {
		t.Fatalf("horizon not reached: %v", snap.SimTimeSeconds)
	}
}

// TestSlicedEqualsBatch pins the determinism contract the live mode
// advertises: pacing the engine through many uneven AdvanceTo slices
// yields bit-identical state and telemetry to one monolithic Run over
// the same horizon at the same seed.
func TestSlicedEqualsBatch(t *testing.T) {
	const horizon = 3 * time.Hour

	// Batch: one Run call.
	eA, mgrA, dcA := testFacility(t, 7, 10)
	mgrA.Start()
	if err := eA.Run(horizon); err != nil {
		t.Fatal(err)
	}

	// Live: the same facility advanced through ragged slices.
	sB, dcB := testServer(t, 7, 10, Options{Speedup: 1})
	var at time.Duration
	for i := 0; at < horizon; i++ {
		at += time.Duration(1+i%7) * 13 * time.Second
		if at > horizon {
			at = horizon
		}
		if err := sB.AdvanceTo(at); err != nil {
			t.Fatal(err)
		}
	}

	if got, want := sB.src.Engine.Processed(), eA.Processed(); got != want {
		t.Fatalf("events processed: sliced %d, batch %d", got, want)
	}
	if got, want := dcB.Fleet().EnergyJ(), dcA.Fleet().EnergyJ(); got != want {
		t.Fatalf("energy: sliced %v, batch %v", got, want)
	}
	if got, want := dcB.Fleet().PowerW(), dcA.Fleet().PowerW(); got != want {
		t.Fatalf("power: sliced %v, batch %v", got, want)
	}

	// Telemetry frames byte-identical: compare every framed key at raw
	// resolution over the retention window and hourly over the run.
	keys := []string{"srv0000/power", "srv0003/util", "zone00/inlet"}
	for _, key := range keys {
		for _, res := range []telemetry.Resolution{telemetry.ResRaw, telemetry.ResHour} {
			a, errA := dcA.Store().Query(key, 0, horizon+time.Second, res)
			b, errB := dcB.Store().Query(key, 0, horizon+time.Second, res)
			if errA != nil || errB != nil {
				t.Fatalf("query %s: %v / %v", key, errA, errB)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("telemetry diverged for %s at res %v", key, res)
			}
		}
	}
}

// TestOptionsValidation covers the option defaulting and rejection
// paths.
func TestOptionsValidation(t *testing.T) {
	e, mgr, dc := testFacility(t, 11, 5)
	src := Source{Engine: e, Fleet: mgr.Fleet(), Manager: mgr, DC: dc}
	for _, opts := range []Options{
		{Speedup: 0},
		{Speedup: -1},
		{Speedup: 1, Horizon: -time.Hour},
		{Speedup: 1, Slice: -time.Second},
		{Speedup: 1, EmitEvery: -time.Second},
		{Speedup: 1, OutsideC: 20, OutsideRH: 1.5},
	} {
		if _, err := NewServer(src, opts); err == nil {
			t.Errorf("NewServer(%+v) should reject", opts)
		}
	}
	if _, err := NewServer(Source{}, Options{Speedup: 1}); err == nil {
		t.Error("nil engine should reject")
	}
	s, err := NewServer(src, Options{Speedup: 2})
	if err != nil {
		t.Fatal(err)
	}
	o := s.Options()
	if o.Slice != 50*time.Millisecond || o.EmitEvery != 15*time.Second {
		t.Errorf("defaults not applied: %+v", o)
	}
	if o.Carbon.BaseGPerKWh <= 0 {
		t.Error("carbon model not defaulted")
	}
	if o.OutsideC != 18 || o.OutsideRH != 0.5 {
		t.Errorf("outside conditions not defaulted: %v %v", o.OutsideC, o.OutsideRH)
	}
}
