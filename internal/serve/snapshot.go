package serve

import (
	"sync"
	"time"

	"repro/internal/workload"
)

// Snapshot is one consistent observation of the live simulation,
// captured under the pacer's read lock. It backs all three serving
// surfaces: the OpenMetrics exposition, the JSON snapshot API, and the
// SSE stream — so a scrape, a dashboard poll, and a stream event taken
// at the same instant agree on every number.
type Snapshot struct {
	// Seq increments per published snapshot (SSE event id).
	Seq uint64 `json:"seq"`
	// SimTimeSeconds is the virtual clock in seconds since start.
	SimTimeSeconds float64 `json:"sim_time_seconds"`
	// Speedup is the configured virtual-per-wall time ratio.
	Speedup float64 `json:"speedup"`
	// EventsProcessed counts fired kernel events.
	EventsProcessed uint64 `json:"events_processed"`

	// Mode is the active policy composition ("" without a manager).
	Mode string `json:"mode,omitempty"`
	// PState is the fleet-wide DVFS operating point.
	PState int `json:"pstate"`
	// Decisions counts manager decision cycles.
	Decisions int64 `json:"decisions"`
	// SLAViolationRate is the running fraction of decisions over SLA.
	SLAViolationRate float64 `json:"sla_violation_rate"`
	// WorstResponseSeconds is the worst observed response time.
	WorstResponseSeconds float64 `json:"worst_response_seconds"`

	// FleetSize, OnCount, ActiveCount describe the server pool.
	FleetSize   int `json:"fleet_size"`
	OnCount     int `json:"on_count"`
	ActiveCount int `json:"active_count"`
	// SwitchOns / SwitchOffs count cumulative power transitions.
	SwitchOns  int `json:"switch_ons"`
	SwitchOffs int `json:"switch_offs"`
	// PowerW is the instantaneous IT draw; EnergyJoules the cumulative
	// fleet energy through the last simulation event.
	PowerW       float64 `json:"power_w"`
	EnergyJoules float64 `json:"energy_joules"`
	// Trips counts protective thermal shutdowns.
	Trips int `json:"trips"`
	// RebaseDriftW / RebaseDriftMaxW expose the fleet's pre-clamp
	// aggregate drift (last rebase and lifetime high-water mark).
	RebaseDriftW    float64 `json:"rebase_drift_w"`
	RebaseDriftMaxW float64 `json:"rebase_drift_max_w"`

	// Facility adds the power-tree/cooling view when a DataCenter is
	// attached.
	Facility *FacilitySnapshot `json:"facility,omitempty"`

	// Carbon is the emissions view.
	Carbon CarbonSnapshot `json:"carbon"`

	// Degrader reports graceful-degradation state when one is wired.
	Degrader *DegraderSnapshot `json:"degrader,omitempty"`

	// Users reports request-level user outcomes when an admission
	// controller is wired.
	Users *UsersSnapshot `json:"users,omitempty"`
}

// UsersSnapshot is the request-level (user outcome) slice of a
// snapshot: what happened to the people behind the load curve.
type UsersSnapshot struct {
	// OfferedTotal is cumulative fresh user arrivals; AdmittedTotal,
	// RejectedTotal, and DeferredBacklog partition it.
	OfferedTotal    float64 `json:"offered_total"`
	AdmittedTotal   float64 `json:"admitted_total"`
	RejectedTotal   float64 `json:"rejected_total"`
	DegradedTotal   float64 `json:"degraded_total"`
	DeferredBacklog float64 `json:"deferred_backlog"`
	// FairShareQ is the share granted on the latest admission tick;
	// ShedLevel the current user-facing shedding ladder level.
	FairShareQ float64 `json:"fair_share_q"`
	ShedLevel  int     `json:"shed_level"`
	// Retry reports the closed retry loop when one is wired.
	Retry *RetrySnapshot `json:"retry,omitempty"`
	// Classes carries per-class accounting and SLO-miss rates.
	Classes []UserClassSnapshot `json:"classes"`
}

// RetrySnapshot is the closed-loop (client retry) slice of the user
// view: how rejection feedback is amplifying load and what the
// admission-side circuit breaker is doing about it.
type RetrySnapshot struct {
	// FreshTotal counts first arrivals; RetriedTotal retry
	// re-presentations; AbandonedTotal users who exhausted their
	// attempts; GoodputTotal users that completed service.
	FreshTotal     float64 `json:"fresh_total"`
	RetriedTotal   float64 `json:"retried_total"`
	AbandonedTotal float64 `json:"abandoned_total"`
	GoodputTotal   float64 `json:"goodput_total"`
	// InRetry is users currently parked in retry backoff.
	InRetry float64 `json:"in_retry"`
	// Amplification is cumulative attempts over fresh arrivals (1 = no
	// retry inflation).
	Amplification float64 `json:"retry_amplification"`
	// BreakerState is "closed", "open", or "half-open"; BreakerTrips
	// counts closed-to-open transitions.
	BreakerState string `json:"breaker_state"`
	BreakerTrips int64  `json:"breaker_trips"`
}

// UserClassSnapshot is one service class's user accounting.
type UserClassSnapshot struct {
	Class         string  `json:"class"`
	AdmittedTotal float64 `json:"admitted_total"`
	RejectedTotal float64 `json:"rejected_total"`
	DegradedTotal float64 `json:"degraded_total"`
	SLOMissRate   float64 `json:"slo_miss_rate"`
}

// FacilitySnapshot is the facility-level (power tree + cooling) slice of
// a snapshot.
type FacilitySnapshot struct {
	// PUE is facility power over IT power at the configured outside
	// conditions (0 when it could not be evaluated).
	PUE float64 `json:"pue"`
	// FeedInputW is the utility draw at the feed; DistLossW the total
	// distribution loss through the tree.
	FeedInputW float64 `json:"feed_input_w"`
	DistLossW  float64 `json:"dist_loss_w"`
	// Racks and Zones carry per-group power (and per-zone inlets).
	Racks []RackSnapshot `json:"racks"`
	Zones []ZoneSnapshot `json:"zones"`
	// FrameAtSeconds is the virtual timestamp of the telemetry frame
	// round the zone inlets were read from (-1 before the first round).
	FrameAtSeconds float64 `json:"frame_at_seconds"`
}

// RackSnapshot is one rack's instantaneous draw.
type RackSnapshot struct {
	Rack   string  `json:"rack"`
	PowerW float64 `json:"power_w"`
}

// ZoneSnapshot is one cooling zone's draw and inlet temperature.
type ZoneSnapshot struct {
	Zone   string  `json:"zone"`
	PowerW float64 `json:"power_w"`
	InletC float64 `json:"inlet_c"`
}

// CarbonSnapshot is the emissions slice of a snapshot.
type CarbonSnapshot struct {
	// IntensityGPerKWh is the grid intensity at the snapshot instant.
	IntensityGPerKWh float64 `json:"intensity_g_per_kwh"`
	// RateGPerHour is the instantaneous emission rate of the fleet.
	RateGPerHour float64 `json:"rate_g_per_hour"`
	// GramsTotal is cumulative emissions since serving started.
	GramsTotal float64 `json:"grams_total"`
}

// DegraderSnapshot is the graceful-degradation slice of a snapshot.
type DegraderSnapshot struct {
	LadderStage   int `json:"ladder_stage"`
	CapEvents     int `json:"cap_events"`
	SurvivalSheds int `json:"survival_sheds"`
	ShedServers   int `json:"shed_servers"`
	Fallbacks     int `json:"telemetry_fallbacks"`
	DarkRounds    int `json:"telemetry_dark_rounds"`
}

// snapshotLocked builds a snapshot; the caller holds s.mu (read or
// write).
func (s *Server) snapshotLocked() Snapshot {
	now := s.src.Engine.Now()
	snap := buildSnapshot(s.src, s.opts.OutsideC, s.opts.OutsideRH, &s.frameBufs)
	snap.Speedup = s.opts.Speedup
	snap.Carbon = CarbonSnapshot{
		IntensityGPerKWh: s.opts.Carbon.IntensityAt(now),
		RateGPerHour:     s.opts.Carbon.RateGPerHour(now, snap.PowerW),
		GramsTotal:       s.meter.Grams(),
	}
	return snap
}

// buildSnapshot captures one simulation's state — the engine, fleet,
// manager, facility, degrader, and user slices. It is the shared core
// under the single-facility server and each per-site section of the geo
// server; the caller fills Speedup and the Carbon slice (pacing and
// emission metering live with the owner, not the simulation). The
// caller must hold whatever lock guards the source.
func buildSnapshot(src Source, outsideC, outsideRH float64, frameBufs *sync.Pool) Snapshot {
	now := src.Engine.Now()
	fleet := src.Fleet
	driftLast, driftMax := fleet.RebaseDrift()
	snap := Snapshot{
		SimTimeSeconds:  now.Seconds(),
		EventsProcessed: src.Engine.Processed(),
		FleetSize:       fleet.Size(),
		OnCount:         fleet.OnCount(),
		ActiveCount:     fleet.ActiveCount(),
		PowerW:          fleet.PowerW(),
		EnergyJoules:    fleet.EnergyJ(),
		Trips:           fleet.Trips(),
		RebaseDriftW:    driftLast,
		RebaseDriftMaxW: driftMax,
	}
	snap.SwitchOns, snap.SwitchOffs = fleet.Switches()
	if m := src.Manager; m != nil {
		snap.Mode = m.Mode().String()
		snap.PState = m.PState()
		snap.Decisions = m.Decisions()
		snap.SLAViolationRate = m.SLAViolationRate()
		snap.WorstResponseSeconds = m.WorstResponse().Seconds()
	}
	if dc := src.DC; dc != nil {
		snap.Facility = buildFacilitySnapshot(src, now, outsideC, outsideRH, frameBufs)
	}
	if d := src.Degrader; d != nil {
		snap.Degrader = &DegraderSnapshot{
			LadderStage:   d.LadderStage(),
			CapEvents:     d.CapEvents(),
			SurvivalSheds: d.SurvivalSheds(),
			ShedServers:   d.ShedServers(),
			Fallbacks:     d.Telemetry().Fallbacks(),
			DarkRounds:    d.Telemetry().DarkRounds(),
		}
	}
	rl := src.Retry
	if rl == nil && src.Manager != nil {
		rl = src.Manager.Retry()
	}
	adm := src.Admission
	if adm == nil && src.Manager != nil {
		adm = src.Manager.Admission()
	}
	if adm == nil && rl != nil {
		adm = rl.Admission()
	}
	if adm != nil {
		u := &UsersSnapshot{
			OfferedTotal:    adm.OfferedUsers(),
			AdmittedTotal:   adm.AdmittedUsers(),
			RejectedTotal:   adm.RejectedUsers(),
			DegradedTotal:   adm.DegradedUsers(),
			DeferredBacklog: adm.DeferredBacklog(),
			FairShareQ:      adm.Q(),
			ShedLevel:       adm.ShedLevel(),
			Classes:         make([]UserClassSnapshot, workload.NumClasses),
		}
		if rl != nil {
			u.Retry = &RetrySnapshot{
				FreshTotal:     rl.FreshUsers(),
				RetriedTotal:   rl.RetriedUsers(),
				AbandonedTotal: rl.AbandonedUsers(),
				GoodputTotal:   rl.GoodputUsers(),
				InRetry:        rl.InRetryTotal(),
				Amplification:  rl.RetryAmplification(),
				BreakerState:   rl.State().String(),
				BreakerTrips:   rl.Trips(),
			}
		}
		for c := 0; c < workload.NumClasses; c++ {
			cl := workload.Class(c)
			u.Classes[c] = UserClassSnapshot{
				Class:         cl.String(),
				AdmittedTotal: adm.ClassAdmitted(cl),
				RejectedTotal: adm.ClassRejected(cl),
				DegradedTotal: adm.ClassDegraded(cl),
				SLOMissRate:   adm.SLOMissRate(cl),
			}
		}
		snap.Users = u
	}
	return snap
}

// buildFacilitySnapshot builds the facility slice. Zone inlets come
// from the open row of the columnar telemetry frame — the same bytes
// batch-mode analysis reads, one memcpy, no re-aggregation; per-rack and
// per-zone power are the fleet's O(1) maintained sums.
func buildFacilitySnapshot(src Source, now time.Duration, outsideC, outsideRH float64, frameBufs *sync.Pool) *FacilitySnapshot {
	dc := src.DC
	fleet := src.Fleet
	topo := dc.Topology()
	room := dc.Room()

	fs := &FacilitySnapshot{
		Racks:          make([]RackSnapshot, len(topo.Racks)),
		Zones:          make([]ZoneSnapshot, room.Zones()),
		FrameAtSeconds: -1,
	}
	for r := range topo.Racks {
		fs.Racks[r] = RackSnapshot{Rack: topo.Racks[r].Name(), PowerW: fleet.RackPowerW(r)}
	}
	var frameRow []float64
	if fw := dc.Frames(); fw != nil {
		buf := frameBufs.Get().([]float64)
		if len(buf) < fw.Width() {
			buf = make([]float64, fw.Width())
		}
		if at, ok := fw.LatestInto(buf); ok {
			frameRow = buf
			fs.FrameAtSeconds = at.Seconds()
		} else {
			frameBufs.Put(buf) //nolint:staticcheck // slice reuse, not pointer identity
		}
	}
	for z := 0; z < room.Zones(); z++ {
		inlet := room.ZoneInletC(z)
		if frameRow != nil {
			inlet = frameRow[dc.ZoneInletColumn(z)]
		}
		fs.Zones[z] = ZoneSnapshot{Zone: room.ZoneName(z), PowerW: fleet.ZonePowerW(z), InletC: inlet}
	}
	if frameRow != nil {
		frameBufs.Put(frameRow) //nolint:staticcheck
	}
	flow := dc.Flow()
	fs.FeedInputW = flow.InW
	fs.DistLossW = flow.TotalLoss()
	if pue, _, err := dc.PUEAt(outsideC, outsideRH); err == nil {
		fs.PUE = pue
	}
	return fs
}
