package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// broadcaster fans published snapshots out to SSE subscribers. Each
// subscriber has a buffered channel; a subscriber that cannot keep up
// has events dropped rather than stalling the pacer — the event id
// (snapshot sequence number) makes gaps visible to the client. Events
// are marshalled once per publish and delivered to every subscriber in
// publish order.
type broadcaster struct {
	mu     sync.Mutex
	subs   map[chan []byte]struct{}
	closed bool
}

func newBroadcaster() *broadcaster {
	return &broadcaster{subs: make(map[chan []byte]struct{})}
}

func (b *broadcaster) subscribe() chan []byte {
	ch := make(chan []byte, 16)
	b.mu.Lock()
	if b.closed {
		close(ch) // late subscriber during shutdown: stream ends at once
	} else {
		b.subs[ch] = struct{}{}
	}
	b.mu.Unlock()
	return ch
}

func (b *broadcaster) unsubscribe(ch chan []byte) {
	b.mu.Lock()
	delete(b.subs, ch)
	b.mu.Unlock()
}

// shutdown delivers one final frame to every subscriber (best-effort,
// never blocking) and closes their channels so streaming handlers
// drain and return. Publish and subscribe become no-ops afterwards.
func (b *broadcaster) shutdown(final []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for ch := range b.subs {
		if final != nil {
			select {
			case ch <- final:
			default: // slow subscriber: it still sees the close
			}
		}
		close(ch)
		delete(b.subs, ch)
	}
}

// publish renders the snapshot as one SSE frame and offers it to every
// subscriber without blocking.
func (b *broadcaster) publish(snap Snapshot) {
	b.publishEvent(snap.Seq, "snapshot", snap)
}

// publishEvent renders any snapshot-shaped value as one SSE frame and
// offers it to every subscriber without blocking. The geo server
// publishes its federated snapshot through this path.
func (b *broadcaster) publishEvent(id uint64, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		// Snapshots are plain data; marshalling cannot fail absent a
		// programming error. Drop the event rather than kill the pacer.
		return
	}
	var frame bytes.Buffer
	fmt.Fprintf(&frame, "id: %d\nevent: %s\ndata: %s\n\n", id, event, data)
	payload := frame.Bytes()
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	for ch := range b.subs {
		select {
		case ch <- payload:
		default: // slow subscriber: drop, never block the pacer
		}
	}
	b.mu.Unlock()
}

// handleStream serves /api/v1/stream: an SSE stream of snapshot events
// on the configured virtual-time cadence. The first event is the
// current snapshot so clients render immediately.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	ch := s.sse.subscribe()
	defer s.sse.unsubscribe(ch)

	snap := s.Snapshot()
	if data, err := json.Marshal(snap); err == nil {
		fmt.Fprintf(w, "id: %d\nevent: snapshot\ndata: %s\n\n", snap.Seq, data)
	}
	fl.Flush()

	for {
		select {
		case <-r.Context().Done():
			return
		case frame, ok := <-ch:
			if !ok {
				return // server shutdown: final frame already delivered
			}
			if _, err := w.Write(frame); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// handleSnapshot serves /api/v1/snapshot as pretty-printed JSON.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	snap := s.Snapshot()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleMetrics serves /metrics in the OpenMetrics text format. The
// snapshot is taken under the read lock; rendering happens outside it
// into a pooled buffer.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	scrapes := s.scrapes.Add(1)
	snap := s.Snapshot()
	buf := s.bufs.Get().(*bytes.Buffer)
	buf.Reset()
	writeMetrics(buf, snap, scrapes)
	w.Header().Set("Content-Type", ContentType)
	_, _ = w.Write(buf.Bytes())
	s.bufs.Put(buf)
}
