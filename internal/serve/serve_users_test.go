package serve

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/onoff"
	"repro/internal/workload"
)

// userTestServer builds the shared test facility but manages it with a
// request-level admission controller in front of dispatch.
func userTestServer(t *testing.T) (*Server, *workload.Admission) {
	t.Helper()
	e, _, dc := testFacility(t, 1, 10)
	adm, err := workload.NewAdmission(workload.DefaultAdmissionConfig())
	if err != nil {
		t.Fatal(err)
	}
	n := dc.Fleet().Size()
	srvCfg := dc.Fleet().Servers()[0].Config()
	sla := 100 * time.Millisecond
	mgr, err := core.NewManagerForFleet(e, core.ManagerConfig{
		ServerConfig:   srvCfg,
		FleetSize:      n,
		Queue:          workload.DefaultQueueModel(),
		SLA:            sla,
		DecisionPeriod: time.Minute,
		Mode:           core.ModeCoordinated,
		Trigger:        onoff.DelayTrigger{High: sla * 6 / 10, Low: sla / 4, StepUp: 1, StepDown: 1, Min: 1, Max: n},
		InitialOn:      n / 2,
		Admission:      adm,
		ClassDemand: func(now time.Duration) [workload.NumClasses]float64 {
			// ~3 server-equivalents of interactive plus light batch.
			return [workload.NumClasses]float64{
				workload.ClassInteractive: workload.UsersPerTick(150, time.Minute),
				workload.ClassBatch:       workload.UsersPerTick(10, time.Minute),
				workload.ClassBackground:  workload.UsersPerTick(20, time.Minute),
			}
		},
	}, dc.Fleet(), nil)
	if err != nil {
		t.Fatal(err)
	}
	mgr.Start()
	s, err := NewServer(Source{Engine: e, Fleet: dc.Fleet(), Manager: mgr, DC: dc}, Options{Speedup: 3600})
	if err != nil {
		t.Fatal(err)
	}
	return s, adm
}

func TestServeUserOutcomes(t *testing.T) {
	s, adm := userTestServer(t)
	if err := s.AdvanceTo(30 * time.Minute); err != nil {
		t.Fatal(err)
	}

	snap := s.Snapshot()
	u := snap.Users
	if u == nil {
		t.Fatal("snapshot has no users section despite admission control")
	}
	if u.OfferedTotal <= 0 || u.AdmittedTotal <= 0 {
		t.Fatalf("no users flowed: %+v", u)
	}
	got := u.AdmittedTotal + u.RejectedTotal + u.DeferredBacklog
	if math.Abs(got-u.OfferedTotal) > 1e-6*u.OfferedTotal {
		t.Errorf("snapshot user conservation broken: %+v", u)
	}
	if len(u.Classes) != workload.NumClasses {
		t.Fatalf("classes = %d, want %d", len(u.Classes), workload.NumClasses)
	}
	if u.Classes[workload.ClassInteractive].Class != "interactive" {
		t.Errorf("class name = %q", u.Classes[workload.ClassInteractive].Class)
	}
	if u.FairShareQ != adm.Q() {
		t.Errorf("snapshot Q %v != controller Q %v", u.FairShareQ, adm.Q())
	}

	// The exposition carries the user-outcome families (scrape lints).
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	samples, body := scrape(t, ts.URL)
	for _, name := range []string{
		"dcsim_offered_users_total",
		"dcsim_admitted_users_total",
		"dcsim_rejected_users_total",
		"dcsim_degraded_users_total",
		"dcsim_deferred_users",
		"dcsim_fair_share_q",
		"dcsim_user_shed_level",
	} {
		if _, ok := samples[name]; !ok {
			t.Errorf("exposition missing %s", name)
		}
	}
	if samples["dcsim_admitted_users_total"] <= 0 {
		t.Error("admitted users counter is zero")
	}
	for _, cl := range []string{"interactive", "batch", "background"} {
		if !strings.Contains(body, `dcsim_slo_miss_ratio{class="`+cl+`"}`) {
			t.Errorf("exposition missing SLO-miss gauge for class %s", cl)
		}
		if !strings.Contains(body, `dcsim_class_admitted_users_total{class="`+cl+`"}`) {
			t.Errorf("exposition missing per-class admitted counter for %s", cl)
		}
	}
}

func TestServeUsersOmittedWithoutAdmission(t *testing.T) {
	s, _ := testServer(t, 1, 10, Options{Speedup: 3600})
	if err := s.AdvanceTo(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if snap := s.Snapshot(); snap.Users != nil {
		t.Error("fluid-only run grew a users section")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	samples, _ := scrape(t, ts.URL)
	if _, ok := samples["dcsim_rejected_users_total"]; ok {
		t.Error("fluid-only exposition carries user metrics")
	}
}

func TestServeStandaloneAdmissionSource(t *testing.T) {
	// Source.Admission works without a manager (e.g. an analytic loop
	// feeding the controller out-of-band).
	e, mgr, _ := testFacility(t, 2, 5)
	adm, err := workload.NewAdmission(workload.DefaultAdmissionConfig())
	if err != nil {
		t.Fatal(err)
	}
	fresh := [workload.NumClasses]float64{1000, 100, 50}
	adm.Tick(time.Minute, &fresh, 4)
	s, err := NewServer(Source{Engine: e, Fleet: mgr.Fleet(), Admission: adm}, Options{Speedup: 1})
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.Users == nil {
		t.Fatal("standalone admission source produced no users section")
	}
	if snap.Users.OfferedTotal != 1150 {
		t.Errorf("offered = %v, want 1150", snap.Users.OfferedTotal)
	}
}
