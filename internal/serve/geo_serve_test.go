package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
)

// geoTestConfig builds a small federation: site 0 carries the full
// facility substrate, odd sites close the retry loop, every site gets
// its own time-zone phase. Mirrors the geo package's own test scenario.
func geoTestConfig(seed int64, n int) geo.Config {
	cfg := geo.Config{
		Seed:       seed,
		Epoch:      30 * time.Minute,
		Tick:       time.Minute,
		Horizon:    4 * time.Hour,
		Mode:       geo.RouteWeighted,
		Invariants: true,
	}
	for i := 0; i < n; i++ {
		sc := geo.SiteConfig{
			Name:            "s" + string(rune('a'+i)),
			TZOffset:        time.Duration(i) * 24 * time.Hour / time.Duration(n),
			PopulationShare: float64(2 + i%3),
			FleetSize:       24,
			Retry:           i%2 == 1,
		}
		if i == 0 {
			sc.Facility = true
			sc.FleetSize = 40
		}
		cfg.Sites = append(cfg.Sites, sc)
	}
	return cfg
}

func geoTestServer(t *testing.T, seed int64, n int, opts Options) *GeoServer {
	t.Helper()
	fed, err := geo.New(geoTestConfig(seed, n))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fed.Close)
	s, err := NewGeoServer(fed, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestGeoServeEndToEnd drives a 3-site federation through virtual hours
// and checks the merged exposition: lint-clean, site-labeled, with the
// geo roll-up prelude, conditional families scoped to qualifying sites,
// and counters monotone across scrapes.
func TestGeoServeEndToEnd(t *testing.T) {
	s := geoTestServer(t, 3, 3, Options{Speedup: 3600})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if err := s.AdvanceTo(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	first, body := scrape(t, ts.URL)

	if got := first["dcsim_geo_sites"]; got != 3 {
		t.Errorf("dcsim_geo_sites = %v, want 3", got)
	}
	if got := first["dcsim_geo_epochs_total"]; got != 4 {
		t.Errorf("dcsim_geo_epochs_total = %v, want 4 (2h / 30m)", got)
	}
	if _, ok := first[`dcsim_geo_route_mode{mode="weighted"}`]; !ok {
		t.Errorf("exposition missing weighted route mode\n%s", body)
	}
	// Every per-site family carries the site label; weights sum to 1.
	wsum := 0.0
	for _, site := range []string{"sa", "sb", "sc"} {
		w, ok := first[`dcsim_geo_route_weight{site="`+site+`"}`]
		if !ok {
			t.Fatalf("missing route weight for %s\n%s", site, body)
		}
		wsum += w
		for _, fam := range []string{
			"dcsim_sim_time_seconds", "dcsim_fleet_power_watts",
			"dcsim_fleet_energy_joules_total", "dcsim_servers_active",
			"dcsim_carbon_intensity", "dcsim_carbon_grams_total",
			"dcsim_offered_users_total", "dcsim_fair_share_q",
		} {
			if _, ok := first[fam+`{site="`+site+`"}`]; !ok {
				t.Errorf("exposition missing %s for site %s", fam, site)
			}
		}
	}
	if math.Abs(wsum-1) > 1e-9 {
		t.Errorf("route weights sum to %v, want 1", wsum)
	}
	// Facility families only for the facility-backed site; retry
	// families only for the retry site.
	if _, ok := first[`dcsim_pue_ratio{site="sa"}`]; !ok {
		t.Errorf("missing facility section for sa\n%s", body)
	}
	if _, ok := first[`dcsim_pue_ratio{site="sb"}`]; ok {
		t.Error("fleet-only site sb must not carry facility families")
	}
	if _, ok := first[`dcsim_goodput_users_total{site="sb"}`]; !ok {
		t.Error("missing retry section for retry site sb")
	}
	if _, ok := first[`dcsim_goodput_users_total{site="sa"}`]; ok {
		t.Error("non-retry site sa must not carry retry families")
	}
	// Global roll-ups agree with the per-site sums.
	psum := 0.0
	for _, site := range []string{"sa", "sb", "sc"} {
		psum += first[`dcsim_fleet_power_watts{site="`+site+`"}`]
	}
	if math.Abs(psum-first["dcsim_geo_power_watts"]) > 1e-6 {
		t.Errorf("geo power %v != site sum %v", first["dcsim_geo_power_watts"], psum)
	}

	if err := s.AdvanceTo(4 * time.Hour); err != nil {
		t.Fatal(err)
	}
	second, _ := scrape(t, ts.URL)
	for _, counter := range []string{
		"dcsim_geo_epochs_total",
		"dcsim_geo_energy_joules_total",
		"dcsim_geo_carbon_grams_total",
		`dcsim_fleet_energy_joules_total{site="sc"}`,
		`dcsim_offered_users_total{site="sb"}`,
		"dcsim_scrapes_total",
	} {
		if second[counter] <= first[counter] {
			t.Errorf("%s not monotone: %v -> %v", counter, first[counter], second[counter])
		}
	}

	// JSON snapshot agrees with the exposition.
	resp, err := http.Get(ts.URL + "/api/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap GeoSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.SimTimeSeconds != second["dcsim_sim_time_seconds{site=\"sa\"}"] {
		t.Errorf("snapshot sim time %v != metrics", snap.SimTimeSeconds)
	}
	if len(snap.Sites) != 3 {
		t.Fatalf("snapshot sites = %d, want 3", len(snap.Sites))
	}
	if snap.Sites[0].Facility == nil || snap.Sites[1].Facility != nil {
		t.Error("snapshot facility sections misplaced")
	}
	if snap.Sites[1].Users == nil || snap.Sites[1].Users.Retry == nil {
		t.Error("snapshot retry section missing for sb")
	}
}

// TestGeoServedEqualsBatch is the serve-side half of the federation's
// determinism claim: pacing Federation.AdvanceTo in arbitrary slices
// through a GeoServer yields a Result bit-identical to one batch Run.
func TestGeoServedEqualsBatch(t *testing.T) {
	batch, err := geo.New(geoTestConfig(7, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer batch.Close()
	if err := batch.Run(); err != nil {
		t.Fatal(err)
	}

	s := geoTestServer(t, 7, 3, Options{Speedup: 3600})
	for now := 13 * time.Minute; ; now += 41 * time.Minute {
		if now > 4*time.Hour {
			now = 4 * time.Hour
		}
		if err := s.AdvanceTo(now); err != nil {
			t.Fatal(err)
		}
		if now == 4*time.Hour {
			break
		}
	}
	got := s.fed.Result()
	want := batch.Result()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("served result diverged from batch:\n got %+v\nwant %+v", got, want)
	}
}

// TestGeoSSEStream checks the federated SSE stream delivers the priming
// snapshot and then cadence events as virtual time advances.
func TestGeoSSEStream(t *testing.T) {
	s := geoTestServer(t, 5, 2, Options{Speedup: 3600, EmitEvery: 15 * time.Minute})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/api/v1/stream", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	events := make(chan GeoSnapshot, 16)
	go func() {
		defer close(events)
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var snap GeoSnapshot
			if json.Unmarshal([]byte(line[6:]), &snap) == nil {
				events <- snap
			}
		}
	}()

	// Priming event arrives before any advance.
	select {
	case snap := <-events:
		if len(snap.Sites) != 2 {
			t.Fatalf("priming snapshot sites = %d, want 2", len(snap.Sites))
		}
	case <-ctx.Done():
		t.Fatal("no priming event")
	}

	if err := s.AdvanceTo(time.Hour); err != nil {
		t.Fatal(err)
	}
	select {
	case snap, ok := <-events:
		if !ok {
			t.Fatal("stream closed before cadence event")
		}
		if snap.SimTimeSeconds <= 0 || snap.Seq == 0 {
			t.Errorf("cadence event malformed: %+v", snap)
		}
	case <-ctx.Done():
		t.Fatal("no cadence event after advancing past the emit boundary")
	}

	s.Shutdown()
	for range events {
	}
}
