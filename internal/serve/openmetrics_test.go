package serve

import (
	"bytes"
	"strings"
	"testing"
)

const validExposition = `# TYPE acme_temp_celsius gauge
# UNIT acme_temp_celsius celsius
# HELP acme_temp_celsius Temperature.
acme_temp_celsius{zone="a",rack="r 1"} 21.5
acme_temp_celsius{zone="b"} 22
# TYPE acme_requests counter
# HELP acme_requests Requests served.
acme_requests_total 1.5e+06
# EOF
`

func TestLintAcceptsValid(t *testing.T) {
	if err := Lint([]byte(validExposition)); err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
}

func TestLintRejections(t *testing.T) {
	cases := map[string]string{
		"missing EOF":              "# TYPE a gauge\n# HELP a x.\na 1\n",
		"content after EOF":        "# TYPE a gauge\n# HELP a x.\na 1\n# EOF\na 2\n",
		"counter without _total":   "# TYPE a counter\n# HELP a x.\na 1\n# EOF\n",
		"negative counter":         "# TYPE a counter\n# HELP a x.\na_total -1\n# EOF\n",
		"sample before TYPE":       "a 1\n# EOF\n",
		"reopened family":          "# TYPE a gauge\n# HELP a x.\na 1\n# TYPE b gauge\n# HELP b x.\nb 1\n# TYPE a gauge\n# EOF\n",
		"sample outside block":     "# TYPE a gauge\n# HELP a x.\n# TYPE b gauge\n# HELP b x.\na 1\nb 1\n# EOF\n",
		"duplicate series":         "# TYPE a gauge\n# HELP a x.\na{k=\"v\"} 1\na{k=\"v\"} 2\n# EOF\n",
		"unit not suffix":          "# TYPE a_seconds gauge\n# UNIT a_seconds watts\n# HELP a_seconds x.\na_seconds 1\n# EOF\n",
		"missing HELP":             "# TYPE a gauge\na 1\n# EOF\n",
		"metadata without samples": "# TYPE a gauge\n# HELP a x.\n# TYPE b gauge\n# HELP b x.\nb 1\n# EOF\n",
		"bad value":                "# TYPE a gauge\n# HELP a x.\na pony\n# EOF\n",
		"bad label name":           "# TYPE a gauge\n# HELP a x.\na{0k=\"v\"} 1\n# EOF\n",
		"unquoted label value":     "# TYPE a gauge\n# HELP a x.\na{k=v} 1\n# EOF\n",
		"unterminated labels":      "# TYPE a gauge\n# HELP a x.\na{k=\"v\" 1\n# EOF\n",
		"duplicate label":          "# TYPE a gauge\n# HELP a x.\na{k=\"v\",k=\"w\"} 1\n# EOF\n",
		"duplicate TYPE":           "# TYPE a gauge\n# TYPE a gauge\n# HELP a x.\na 1\n# EOF\n",
		"TYPE after samples":       "# TYPE a gauge\n# HELP a x.\na{k=\"v\"} 1\n# TYPE a gauge\n# EOF\n",
		"unknown type":             "# TYPE a pony\n# HELP a x.\na 1\n# EOF\n",
		"empty line":               "# TYPE a gauge\n# HELP a x.\n\na 1\n# EOF\n",
		"bad metric name":          "# TYPE a-b gauge\n# HELP a-b x.\na-b 1\n# EOF\n",
	}
	for name, text := range cases {
		if err := Lint([]byte(text)); err == nil {
			t.Errorf("%s: lint accepted\n%s", name, text)
		}
	}
}

// TestLintAcceptsEscapedLabels exercises quoting edge cases the splitter
// must survive: escaped quotes, commas and braces inside values.
func TestLintAcceptsEscapedLabels(t *testing.T) {
	text := "# TYPE a gauge\n# HELP a x.\n" +
		`a{k="va\"l,ue}"} 1` + "\n# EOF\n"
	if err := Lint([]byte(text)); err != nil {
		t.Fatalf("escaped labels rejected: %v", err)
	}
}

// TestWriterOutputLints feeds a fully-populated snapshot (facility and
// degrader sections included) through the writer and the linter.
func TestWriterOutputLints(t *testing.T) {
	snap := Snapshot{
		SimTimeSeconds: 3600, Speedup: 60, EventsProcessed: 12345,
		Mode: "coordinated", PState: 1, Decisions: 60,
		SLAViolationRate: 0.01, WorstResponseSeconds: 0.2,
		FleetSize: 10, OnCount: 6, ActiveCount: 5,
		SwitchOns: 8, SwitchOffs: 3,
		PowerW: 1500, EnergyJoules: 5.4e6, Trips: 1,
		RebaseDriftW: 1e-12, RebaseDriftMaxW: 2e-12,
		Facility: &FacilitySnapshot{
			PUE: 1.4, FeedInputW: 2200, DistLossW: 120,
			Racks:          []RackSnapshot{{Rack: "rack0", PowerW: 800}, {Rack: "rack1", PowerW: 700}},
			Zones:          []ZoneSnapshot{{Zone: "z0", PowerW: 1500, InletC: 24.5}},
			FrameAtSeconds: 3585,
		},
		Carbon:   CarbonSnapshot{IntensityGPerKWh: 475, RateGPerHour: 712.5, GramsTotal: 700},
		Degrader: &DegraderSnapshot{LadderStage: 2, CapEvents: 1, SurvivalSheds: 0, ShedServers: 3, Fallbacks: 2, DarkRounds: 1},
	}
	var buf bytes.Buffer
	writeMetrics(&buf, snap, 7)
	text := buf.String()
	if err := Lint(buf.Bytes()); err != nil {
		t.Fatalf("writer output fails lint: %v\n%s", err, text)
	}
	for _, want := range []string{
		"dcsim_degrader_ladder_stage 2\n",
		`dcsim_rack_power_watts{rack="rack1"} 700`,
		"dcsim_scrapes_total 7\n",
		"# UNIT dcsim_zone_inlet_celsius celsius\n",
		"# EOF\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
