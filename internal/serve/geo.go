package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geo"
)

// GeoSiteSnapshot is one federated site's section of a GeoSnapshot: the
// full single-facility view plus the site's identity and routing state.
type GeoSiteSnapshot struct {
	// Site is the site name ("us-east", ...), also the exposition's
	// site label value.
	Site string `json:"site"`
	// TZOffsetSeconds is the site's diurnal phase shift.
	TZOffsetSeconds float64 `json:"tz_offset_seconds"`
	// RouteWeight is the share of global demand the router currently
	// directs at this site.
	RouteWeight float64 `json:"route_weight"`
	// Snapshot is the standard per-facility view (fleet, facility,
	// users, carbon), evaluated in site-local conditions.
	Snapshot
}

// GeoSnapshot is a consistent view of the whole federation: global
// roll-ups plus one full per-site section per site.
type GeoSnapshot struct {
	// Seq is the SSE event sequence number.
	Seq uint64 `json:"seq"`
	// SimTimeSeconds is the shared virtual clock (all sites advance in
	// lockstep epochs, so one clock describes every site).
	SimTimeSeconds float64 `json:"sim_time_seconds"`
	// Speedup echoes the configured virtual-per-wall ratio.
	Speedup float64 `json:"speedup"`
	// Mode names the global routing mode (home/static/weighted).
	Mode string `json:"mode"`
	// Epochs counts routing barriers crossed so far.
	Epochs int64 `json:"epochs"`
	// PowerW / EnergyJoules / GramsCO2e are federation-wide sums.
	PowerW       float64 `json:"power_w"`
	EnergyJoules float64 `json:"energy_joules"`
	GramsCO2e    float64 `json:"grams_co2e"`
	// Sites holds one section per site, in fixed site order.
	Sites []GeoSiteSnapshot `json:"sites"`
}

// GeoServer paces a geo.Federation and serves its merged state over
// HTTP: one OpenMetrics exposition with a site label on every per-site
// family, a JSON snapshot with per-site sections, and an SSE stream.
// It mirrors Server's concurrency discipline — the pacer advances the
// federation under the write lock, handlers copy a snapshot out under
// the read lock and render outside it — which is safe because site
// state only mutates inside Federation.AdvanceTo, even in parallel
// mode.
type GeoServer struct {
	mu   sync.RWMutex
	fed  *geo.Federation
	opts Options

	seq     atomic.Uint64
	scrapes atomic.Uint64

	// nextEmit is the next virtual-time SSE boundary; pacer-only.
	nextEmit time.Duration

	sse       *broadcaster
	frameBufs sync.Pool
	bufs      sync.Pool
}

// NewGeoServer validates the options and builds a server around the
// federation. Options.Carbon is ignored: each site carries its own
// grid model (geo.SiteConfig.Carbon) and the exposition reports
// site-local intensities. A zero Horizon defaults to the federation's
// own horizon so Run terminates instead of idling past it.
func NewGeoServer(fed *geo.Federation, opts Options) (*GeoServer, error) {
	if fed == nil {
		return nil, fmt.Errorf("serve: nil federation")
	}
	if opts.Horizon == 0 {
		opts.Horizon = fed.Config().Horizon
	}
	if err := opts.withDefaults(); err != nil {
		return nil, err
	}
	s := &GeoServer{
		fed:  fed,
		opts: opts,
		sse:  newBroadcaster(),
	}
	s.frameBufs.New = func() any { return []float64(nil) }
	s.bufs.New = func() any { return new(bytes.Buffer) }
	s.nextEmit = fed.Now() + opts.EmitEvery
	return s, nil
}

// Options reports the effective options after defaulting.
func (s *GeoServer) Options() Options { return s.opts }

// AdvanceTo drives the federation to the target virtual time under the
// write lock. Slicing Federation.AdvanceTo is outcome-neutral (barriers
// fire at fixed epoch boundaries regardless of pacing), so a served
// federation stays bit-identical to a batch run over the same horizon.
func (s *GeoServer) AdvanceTo(target time.Duration) error {
	s.mu.Lock()
	err := s.fed.AdvanceTo(target)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	s.emitIfDue()
	return nil
}

// emitIfDue publishes one SSE snapshot when the virtual clock has
// crossed the next cadence boundary. Pacer-goroutine only.
func (s *GeoServer) emitIfDue() {
	s.mu.RLock()
	now := s.fed.Now()
	due := now >= s.nextEmit
	var snap GeoSnapshot
	if due {
		snap = s.snapshotLocked()
	}
	s.mu.RUnlock()
	if !due {
		return
	}
	for s.nextEmit <= now {
		s.nextEmit += s.opts.EmitEvery
	}
	snap.Seq = s.seq.Add(1)
	s.sse.publishEvent(snap.Seq, "snapshot", snap)
}

// Run paces the federation until ctx is cancelled or the horizon is
// reached, exactly like Server.Run.
func (s *GeoServer) Run(ctx context.Context) error {
	tick := time.NewTicker(s.opts.Slice)
	defer tick.Stop()
	step := time.Duration(float64(s.opts.Slice) * s.opts.Speedup)
	if step <= 0 {
		step = 1
	}
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
		s.mu.RLock()
		target := s.fed.Now() + step
		s.mu.RUnlock()
		if target > s.opts.Horizon {
			target = s.opts.Horizon
		}
		if err := s.AdvanceTo(target); err != nil {
			return err
		}
		s.mu.RLock()
		done := s.fed.Now() >= s.opts.Horizon
		s.mu.RUnlock()
		if done {
			return nil
		}
	}
}

// Snapshot captures a consistent federation view under the read lock.
func (s *GeoServer) Snapshot() GeoSnapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	snap := s.snapshotLocked()
	snap.Seq = s.seq.Load()
	return snap
}

// snapshotLocked builds the federated snapshot; callers hold s.mu.
func (s *GeoServer) snapshotLocked() GeoSnapshot {
	now := s.fed.Now()
	sites := s.fed.Sites()
	snap := GeoSnapshot{
		SimTimeSeconds: now.Seconds(),
		Speedup:        s.opts.Speedup,
		Mode:           s.fed.Config().Mode.String(),
		Epochs:         s.fed.Epochs(),
		Sites:          make([]GeoSiteSnapshot, 0, len(sites)),
	}
	for _, site := range sites {
		src := Source{
			Engine:    site.Engine(),
			Fleet:     site.Fleet(),
			Manager:   site.Manager(),
			DC:        site.DC(),
			Admission: site.Admission(),
			Retry:     site.Retry(),
		}
		sec := GeoSiteSnapshot{
			Site:            site.Name(),
			TZOffsetSeconds: site.TZOffset().Seconds(),
			RouteWeight:     site.Weight(),
			Snapshot:        buildSnapshot(src, s.opts.OutsideC, s.opts.OutsideRH, &s.frameBufs),
		}
		sec.Snapshot.Speedup = s.opts.Speedup
		// Carbon is evaluated in site-local time against the site's own
		// grid model; grams come from the barrier-integrated meter.
		local := now + site.TZOffset()
		model := site.CarbonModel()
		sec.Snapshot.Carbon = CarbonSnapshot{
			IntensityGPerKWh: model.IntensityAt(local),
			RateGPerHour:     model.RateGPerHour(local, sec.Snapshot.PowerW),
			GramsTotal:       site.Grams(),
		}
		snap.PowerW += sec.Snapshot.PowerW
		snap.EnergyJoules += sec.Snapshot.EnergyJoules
		snap.GramsCO2e += sec.Snapshot.Carbon.GramsTotal
		snap.Sites = append(snap.Sites, sec)
	}
	return snap
}

// Shutdown mirrors Server.Shutdown: one final SSE frame, then every
// stream drains and returns. Safe to call more than once.
func (s *GeoServer) Shutdown() {
	snap := s.Snapshot()
	var final []byte
	if data, err := json.Marshal(snap); err == nil {
		var frame bytes.Buffer
		fmt.Fprintf(&frame, "id: %d\nevent: shutdown\ndata: %s\n\n", snap.Seq, data)
		final = frame.Bytes()
	}
	s.sse.shutdown(final)
}

// Handler returns the HTTP mux: /metrics (merged OpenMetrics with a
// site label), /api/v1/snapshot (JSON with per-site sections),
// /api/v1/stream (SSE), and /healthz.
func (s *GeoServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/api/v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("/api/v1/stream", s.handleStream)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (s *GeoServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	scrapes := s.scrapes.Add(1)
	snap := s.Snapshot()
	buf := s.bufs.Get().(*bytes.Buffer)
	buf.Reset()
	writeGeoMetrics(buf, &snap, scrapes)
	w.Header().Set("Content-Type", ContentType)
	_, _ = w.Write(buf.Bytes())
	s.bufs.Put(buf)
}

func (s *GeoServer) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	snap := s.Snapshot()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *GeoServer) handleStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	ch := s.sse.subscribe()
	defer s.sse.unsubscribe(ch)

	snap := s.Snapshot()
	if data, err := json.Marshal(snap); err == nil {
		fmt.Fprintf(w, "id: %d\nevent: snapshot\ndata: %s\n\n", snap.Seq, data)
	}
	fl.Flush()

	for {
		select {
		case <-r.Context().Done():
			return
		case frame, ok := <-ch:
			if !ok {
				return
			}
			if _, err := w.Write(frame); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
