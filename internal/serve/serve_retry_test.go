package serve

import (
	"bufio"
	"context"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/onoff"
	"repro/internal/workload"
)

// retryTestServer builds the shared test facility managed through the
// closed-loop retry controller.
func retryTestServer(t *testing.T) (*Server, *workload.RetryLoop) {
	t.Helper()
	e, _, dc := testFacility(t, 1, 10)
	adm, err := workload.NewAdmission(workload.DefaultAdmissionConfig())
	if err != nil {
		t.Fatal(err)
	}
	rcfg := workload.DefaultRetryConfig(workload.RetryBackoff)
	rcfg.Breaker = workload.DefaultBreakerConfig()
	rl, err := workload.NewRetryLoop(rcfg, adm, e.RNG().Fork("retry"))
	if err != nil {
		t.Fatal(err)
	}
	n := dc.Fleet().Size()
	srvCfg := dc.Fleet().Servers()[0].Config()
	sla := 100 * time.Millisecond
	mgr, err := core.NewManagerForFleet(e, core.ManagerConfig{
		ServerConfig:   srvCfg,
		FleetSize:      n,
		Queue:          workload.DefaultQueueModel(),
		SLA:            sla,
		DecisionPeriod: time.Minute,
		Mode:           core.ModeCoordinated,
		Trigger:        onoff.DelayTrigger{High: sla * 6 / 10, Low: sla / 4, StepUp: 1, StepDown: 1, Min: 1, Max: n},
		InitialOn:      n / 2,
		Retry:          rl,
		ClassDemand: func(now time.Duration) [workload.NumClasses]float64 {
			return [workload.NumClasses]float64{
				workload.ClassInteractive: workload.UsersPerTick(150, time.Minute),
				workload.ClassBatch:       workload.UsersPerTick(10, time.Minute),
				workload.ClassBackground:  workload.UsersPerTick(20, time.Minute),
			}
		},
	}, dc.Fleet(), nil)
	if err != nil {
		t.Fatal(err)
	}
	mgr.Start()
	s, err := NewServer(Source{Engine: e, Fleet: dc.Fleet(), Manager: mgr, DC: dc}, Options{Speedup: 3600})
	if err != nil {
		t.Fatal(err)
	}
	return s, rl
}

func TestServeRetrySnapshotAndMetrics(t *testing.T) {
	s, rl := retryTestServer(t)
	if err := s.AdvanceTo(30 * time.Minute); err != nil {
		t.Fatal(err)
	}

	snap := s.Snapshot()
	u := snap.Users
	if u == nil || u.Retry == nil {
		t.Fatalf("snapshot has no retry section despite a retry loop: %+v", u)
	}
	rt := u.Retry
	if rt.FreshTotal <= 0 {
		t.Fatal("no fresh users flowed")
	}
	got := rt.GoodputTotal + rt.AbandonedTotal + rt.InRetry + u.DeferredBacklog
	if math.Abs(got-rt.FreshTotal) > 1e-6*rt.FreshTotal {
		t.Errorf("snapshot closed-loop conservation broken: %+v backlog %v", rt, u.DeferredBacklog)
	}
	if rt.Amplification < 1 {
		t.Errorf("amplification %v < 1", rt.Amplification)
	}
	if rt.BreakerState != rl.State().String() {
		t.Errorf("snapshot breaker %q != loop %q", rt.BreakerState, rl.State())
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	samples, body := scrape(t, ts.URL)
	for _, name := range []string{
		"dcsim_fresh_users_total",
		"dcsim_retried_users_total",
		"dcsim_abandoned_users_total",
		"dcsim_goodput_users_total",
		"dcsim_in_retry_users",
		"dcsim_retry_amplification",
		"dcsim_breaker_trips_total",
	} {
		if _, ok := samples[name]; !ok {
			t.Errorf("exposition missing %s", name)
		}
	}
	// Breaker state is a one-hot gauge over all three states.
	hot := 0.0
	for _, st := range []string{"closed", "open", "half-open"} {
		marker := `dcsim_breaker_state{state="` + st + `"} `
		at := strings.Index(body, marker)
		if at < 0 {
			t.Fatalf("exposition missing breaker state %q", st)
		}
		val := body[at+len(marker):]
		if nl := strings.IndexByte(val, '\n'); nl >= 0 {
			val = val[:nl]
		}
		if val == "1" {
			hot++
		}
	}
	if hot != 1 {
		t.Errorf("breaker one-hot sum = %v, want exactly 1", hot)
	}
}

func TestServeRetryOmittedWithoutLoop(t *testing.T) {
	s, _ := userTestServer(t) // plain admission, no retry loop
	if err := s.AdvanceTo(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.Users == nil {
		t.Fatal("users section missing")
	}
	if snap.Users.Retry != nil {
		t.Error("plain-admission run grew a retry section")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	samples, _ := scrape(t, ts.URL)
	if _, ok := samples["dcsim_retried_users_total"]; ok {
		t.Error("plain-admission exposition carries retry metrics")
	}
}

func TestServeStandaloneRetrySource(t *testing.T) {
	// Source.Retry works without a manager; its wrapped admission backs
	// the user view too.
	e, mgr, _ := testFacility(t, 2, 5)
	adm, err := workload.NewAdmission(workload.DefaultAdmissionConfig())
	if err != nil {
		t.Fatal(err)
	}
	rl, err := workload.NewRetryLoop(workload.DefaultRetryConfig(workload.RetryNaive), adm, e.RNG().Fork("retry"))
	if err != nil {
		t.Fatal(err)
	}
	fresh := [workload.NumClasses]float64{1000, 100, 50}
	rl.Tick(time.Minute, &fresh, 4)
	s, err := NewServer(Source{Engine: e, Fleet: mgr.Fleet(), Retry: rl}, Options{Speedup: 1})
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.Users == nil || snap.Users.Retry == nil {
		t.Fatal("standalone retry source produced no retry section")
	}
	if snap.Users.Retry.FreshTotal != 1150 {
		t.Errorf("fresh = %v, want 1150", snap.Users.Retry.FreshTotal)
	}
}

func TestServerShutdownClosesStreams(t *testing.T) {
	s, _ := testServer(t, 1, 5, Options{Speedup: 3600})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/api/v1/stream", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Read the initial snapshot event, then shut down and expect one
	// final "event: shutdown" frame followed by EOF.
	sc := bufio.NewScanner(resp.Body)
	ready := make(chan struct{}, 1)
	shutdownSeen := make(chan bool, 1)
	go func() {
		gotShutdown := false
		for sc.Scan() {
			switch sc.Text() {
			case "event: snapshot":
				select {
				case ready <- struct{}{}:
				default:
				}
			case "event: shutdown":
				gotShutdown = true
			}
		}
		shutdownSeen <- gotShutdown
	}()

	select {
	case <-ready:
	case <-ctx.Done():
		t.Fatal("no initial SSE event before shutdown")
	}
	s.Shutdown()
	s.Shutdown() // idempotent
	select {
	case got := <-shutdownSeen:
		if !got {
			t.Error("stream ended without a final shutdown event")
		}
	case <-ctx.Done():
		t.Fatal("stream did not end after Shutdown")
	}

	// Streams opened after shutdown end immediately (after the initial
	// snapshot), and scrapes still answer.
	resp2, err := http.Get(ts.URL + "/api/v1/stream")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(resp2.Body); err != nil {
		t.Errorf("post-shutdown stream read: %v", err)
	}
	resp2.Body.Close()
	resp3, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if err := Lint(body); err != nil {
		t.Errorf("post-shutdown scrape fails lint: %v", err)
	}
}
