// Package par is a deterministic parallel executor for the simulator's
// per-tick hot loops. It fans contiguous index ranges ("shards") out over
// a persistent worker pool and guarantees a reduction contract the golden
// fixtures depend on: shard boundaries are a pure function of the data
// size — never of the worker count — so any per-shard partial result
// folded in shard order is bit-identical no matter how many workers (or
// which interleaving) executed the shards. Parallelism changes wall-clock
// time only, never a single float bit.
//
// The pool itself is deliberately small: parked goroutines on a channel,
// an atomic cursor over the shard list, caller participation so a
// RunRanges never blocks a core on coordination, and panic propagation to
// the caller. A nil *Pool executes inline in shard order, so callers arm
// the sharded code path unconditionally and let the pool decide whether
// extra OS threads are worth waking.
package par

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

// Shard sizing. MinShardLen keeps per-shard fixed costs (wakeup, cursor
// traffic, accumulator merge) well under the shard's own work; MaxShards
// bounds the merge fan-in and the per-shard accumulator footprint.
// shardAlign rounds interior boundaries to 8 float64s = one 64-byte cache
// line, so two workers never write the same line at a shard edge.
const (
	// MinShardLen is the smallest index count worth its own shard.
	MinShardLen = 512
	// MaxShards caps how many shards Shards produces for any n.
	MaxShards = 64
	// shardAlign is the boundary alignment in elements (one cache line
	// of float64s).
	shardAlign = 8
)

// Range is one contiguous half-open index interval [Lo, Hi).
type Range struct {
	Lo, Hi int
}

// Len reports the number of indexes in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Shards partitions [0, n) into contiguous ranges. The partition depends
// only on n: callers that fold per-shard partials in shard order get
// results that are bit-identical for every worker count, because the
// grouping of the floating-point reduction is fixed by the data size.
// Interior boundaries are multiples of 8 elements (64 bytes of float64),
// so slices indexed by shard never false-share a cache line at the seams.
// n <= 0 returns nil; n < 2*MinShardLen returns a single shard.
func Shards(n int) []Range {
	if n <= 0 {
		return nil
	}
	s := n / MinShardLen
	if s < 1 {
		s = 1
	}
	if s > MaxShards {
		s = MaxShards
	}
	out := make([]Range, s)
	lo := 0
	for i := 0; i < s; i++ {
		hi := n
		if i < s-1 {
			// Cut at the aligned floor of the proportional boundary.
			// Each shard holds >= MinShardLen - shardAlign elements, so
			// boundaries stay strictly increasing.
			hi = (i + 1) * n / s / shardAlign * shardAlign
		}
		out[i] = Range{Lo: lo, Hi: hi}
		lo = hi
	}
	return out
}

// task is one RunRanges invocation in flight: the shard list, an atomic
// claim cursor, completion tracking, and the first captured panic.
type task struct {
	shards []Range
	fn     func(shard int, r Range)
	cursor atomic.Int64
	wg     sync.WaitGroup
	pOnce  sync.Once
	pVal   any
}

// run claims shards until the cursor is exhausted. Stale tasks delivered
// to a worker after completion fall straight through.
func (t *task) run() {
	for {
		i := int(t.cursor.Add(1)) - 1
		if i >= len(t.shards) {
			return
		}
		t.exec(i)
	}
}

// exec runs one shard, capturing the first panic so wg accounting (and
// therefore the caller's Wait) survives a panicking shard function.
func (t *task) exec(i int) {
	defer t.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			t.pOnce.Do(func() { t.pVal = r })
		}
	}()
	t.fn(i, t.shards[i])
}

// Pool executes shard fan-outs over persistent parked workers. The zero
// of the type is not used; a nil *Pool is valid and executes inline, in
// shard order, on the calling goroutine — the workers=1 configuration.
type Pool struct {
	workers int
	work    chan *task
	close   sync.Once
}

// New builds a pool that executes each RunRanges over `workers`
// goroutines: workers-1 parked background workers plus the calling
// goroutine. workers < 2 returns nil — the inline executor — so callers
// can hold and pass a nil pool without special-casing. Close releases
// the background workers.
func New(workers int) *Pool {
	if workers < 2 {
		return nil
	}
	p := &Pool{workers: workers, work: make(chan *task, workers-1)}
	for i := 0; i < workers-1; i++ {
		go func() {
			for t := range p.work {
				t.run()
			}
		}()
	}
	return p
}

// Workers reports the execution width RunRanges uses (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Close parks the pool permanently, releasing its background goroutines.
// Idempotent; safe on nil. RunRanges must not be called after Close.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.close.Do(func() { close(p.work) })
}

// RunRanges executes fn once per shard and returns when every shard has
// completed. Shards are claimed dynamically, so callers must not assume
// any cross-shard ordering — determinism comes from each shard writing
// only shard-local outputs (its index range, its accumulator slot) that
// the caller folds in shard order afterwards. The calling goroutine
// participates. If any fn panics, the first panic value is re-raised
// here after all shards finish. A nil pool (or a single shard) executes
// inline in shard order.
func (p *Pool) RunRanges(shards []Range, fn func(shard int, r Range)) {
	if p == nil || len(shards) <= 1 {
		for i, r := range shards {
			fn(i, r)
		}
		return
	}
	t := &task{shards: shards, fn: fn}
	t.wg.Add(len(shards))
	wake := p.workers - 1
	if wake > len(shards)-1 {
		wake = len(shards) - 1
	}
	for i := 0; i < wake; i++ {
		p.work <- t
	}
	t.run()
	t.wg.Wait()
	if t.pVal != nil {
		panic(t.pVal)
	}
}

// AlignedFloats returns a zeroed float64 slice of length n whose backing
// array starts on a 64-byte cache-line boundary. Combined with the
// aligned interior boundaries of Shards, shard-partitioned writes into
// the slice touch disjoint cache lines end to end — no false sharing
// between adjacent shards.
func AlignedFloats(n int) []float64 {
	if n < 0 {
		n = 0
	}
	buf := make([]float64, n+shardAlign-1)
	off := 0
	if n > 0 {
		if rem := uintptr(unsafe.Pointer(unsafe.SliceData(buf))) % 64; rem != 0 {
			off = int((64 - rem) / 8)
		}
	}
	return buf[off : off+n : off+n]
}
