package par

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"unsafe"
)

// TestShardsCoverage: every n tiles [0, n) exactly, in order, with
// non-empty shards and aligned interior boundaries.
func TestShardsCoverage(t *testing.T) {
	sizes := []int{0, 1, 7, 511, 512, 513, 1023, 1024, 1025, 4096, 9999,
		MinShardLen*MaxShards - 1, MinShardLen * MaxShards, 100_000, 1_000_000}
	for _, n := range sizes {
		shards := Shards(n)
		if n <= 0 {
			if shards != nil {
				t.Fatalf("Shards(%d) = %v, want nil", n, shards)
			}
			continue
		}
		if len(shards) < 1 || len(shards) > MaxShards {
			t.Fatalf("Shards(%d): %d shards out of bounds", n, len(shards))
		}
		lo := 0
		for i, r := range shards {
			if r.Lo != lo {
				t.Fatalf("Shards(%d): shard %d starts at %d, want %d", n, i, r.Lo, lo)
			}
			if r.Len() <= 0 {
				t.Fatalf("Shards(%d): shard %d empty (%+v)", n, i, r)
			}
			if i < len(shards)-1 && r.Hi%shardAlign != 0 {
				t.Fatalf("Shards(%d): interior boundary %d not %d-aligned", n, r.Hi, shardAlign)
			}
			lo = r.Hi
		}
		if lo != n {
			t.Fatalf("Shards(%d): tiles up to %d, want %d", n, lo, n)
		}
	}
}

// TestShardsSizeOnly: the partition is a pure function of n — calling
// twice yields identical boundaries (no hidden state, no worker count).
func TestShardsSizeOnly(t *testing.T) {
	for _, n := range []int{100, 5000, 123_457} {
		a, b := Shards(n), Shards(n)
		if len(a) != len(b) {
			t.Fatalf("Shards(%d) nondeterministic shard count", n)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("Shards(%d) shard %d differs: %+v vs %+v", n, i, a[i], b[i])
			}
		}
	}
}

// sumShardOrdered folds per-shard partial sums in shard order — the
// canonical reduction the simulator uses.
func sumShardOrdered(p *Pool, data []float64) float64 {
	shards := Shards(len(data))
	partials := make([]float64, len(shards))
	p.RunRanges(shards, func(shard int, r Range) {
		s := 0.0
		for _, v := range data[r.Lo:r.Hi] {
			s += v
		}
		partials[shard] = s
	})
	total := 0.0
	for _, s := range partials {
		total += s
	}
	return total
}

// TestDeterministicReduction: the shard-ordered fold is bit-identical
// across worker counts, including the nil (inline) pool, over data hard
// enough that regrouping the float additions would change bits.
func TestDeterministicReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	data := make([]float64, 50_000)
	for i := range data {
		// Wildly varying magnitudes to make addition order matter.
		data[i] = rng.NormFloat64() * float64(int64(1)<<uint(rng.Intn(40)))
	}
	ref := sumShardOrdered(nil, data)
	for _, w := range []int{2, 3, 4, 8} {
		p := New(w)
		for rep := 0; rep < 3; rep++ {
			if got := sumShardOrdered(p, data); got != ref {
				t.Fatalf("workers=%d rep %d: sum %x != serial %x", w, rep, got, ref)
			}
		}
		p.Close()
	}
}

// TestRunRangesEveryShardOnce: each shard executes exactly once per call
// and the pool is reusable across many calls.
func TestRunRangesEveryShardOnce(t *testing.T) {
	p := New(4)
	defer p.Close()
	for call := 0; call < 50; call++ {
		n := 1 + (call*977)%20_000
		shards := Shards(n)
		counts := make([]atomic.Int32, len(shards))
		p.RunRanges(shards, func(shard int, r Range) {
			counts[shard].Add(1)
		})
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("call %d: shard %d ran %d times", call, i, c)
			}
		}
	}
}

// TestPanicPropagation: a panic in one shard surfaces to the caller after
// all shards finish, and the pool remains usable afterwards.
func TestPanicPropagation(t *testing.T) {
	p := New(4)
	defer p.Close()
	shards := Shards(10_000)
	func() {
		defer func() {
			if r := recover(); r != "boom" {
				t.Fatalf("recovered %v, want \"boom\"", r)
			}
		}()
		p.RunRanges(shards, func(shard int, r Range) {
			if shard == len(shards)/2 {
				panic("boom")
			}
		})
		t.Fatal("RunRanges returned without panicking")
	}()
	// Pool still healthy.
	var ran atomic.Int32
	p.RunRanges(shards, func(shard int, r Range) { ran.Add(1) })
	if int(ran.Load()) != len(shards) {
		t.Fatalf("post-panic call ran %d shards, want %d", ran.Load(), len(shards))
	}
}

// TestNilAndSmallPools: nil pools, workers<2 construction, and Close
// idempotence all behave as the inline executor contract promises.
func TestNilAndSmallPools(t *testing.T) {
	for _, w := range []int{-1, 0, 1} {
		if p := New(w); p != nil {
			t.Fatalf("New(%d) = %v, want nil", w, p)
		}
	}
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool Workers() = %d, want 1", p.Workers())
	}
	p.Close() // must not crash
	order := []int{}
	p.RunRanges(Shards(2000), func(shard int, r Range) { order = append(order, shard) })
	for i, s := range order {
		if s != i {
			t.Fatalf("nil pool ran shards out of order: %v", order)
		}
	}
	q := New(4)
	q.Close()
	q.Close() // idempotent
}

// TestAlignedFloats: base address 64-byte aligned, correct length, zeroed.
func TestAlignedFloats(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 63, 64, 1000, 12345} {
		s := AlignedFloats(n)
		if len(s) != n {
			t.Fatalf("AlignedFloats(%d) len %d", n, len(s))
		}
		if n == 0 {
			continue
		}
		if addr := uintptr(unsafe.Pointer(unsafe.SliceData(s))); addr%64 != 0 {
			t.Fatalf("AlignedFloats(%d) base %#x not 64-byte aligned", n, addr)
		}
		for i, v := range s {
			if v != 0 {
				t.Fatalf("AlignedFloats(%d)[%d] = %v, want 0", n, i, v)
			}
		}
		// The cap fence keeps appends from silently sharing the pad.
		if cap(s) != n {
			t.Fatalf("AlignedFloats(%d) cap %d, want %d", n, cap(s), n)
		}
	}
}

// TestConcurrentStress exercises claim/wakeup under -race with oversized
// worker counts relative to shard counts and vice versa.
func TestConcurrentStress(t *testing.T) {
	for _, w := range []int{2, 8, 32} {
		p := New(w)
		for call := 0; call < 30; call++ {
			n := 1 + call*701
			shards := Shards(n)
			var sum atomic.Int64
			p.RunRanges(shards, func(shard int, r Range) {
				sum.Add(int64(r.Len()))
			})
			if int(sum.Load()) != n {
				t.Fatalf("w=%d n=%d: covered %d indexes", w, n, sum.Load())
			}
		}
		p.Close()
	}
}

// TestConcurrentCallersSharePool pins the geo federation's usage: N
// site goroutines issue RunRanges against one shared pool at the same
// time. Each call must cover exactly its own shards exactly once —
// tasks are claim-isolated, so overlapping fan-outs may interleave on
// the workers but never cross-contaminate.
func TestConcurrentCallersSharePool(t *testing.T) {
	p := New(4)
	defer p.Close()
	const callers = 6
	var wg sync.WaitGroup
	errs := make(chan string, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for call := 0; call < 25; call++ {
				n := 100 + 997*((c+call)%7)
				shards := Shards(n)
				marks := make([]atomic.Int32, len(shards))
				var sum atomic.Int64
				p.RunRanges(shards, func(shard int, r Range) {
					marks[shard].Add(1)
					sum.Add(int64(r.Len()))
				})
				if int(sum.Load()) != n {
					errs <- fmt.Sprintf("caller %d call %d: covered %d of %d indexes", c, call, sum.Load(), n)
					return
				}
				for i := range marks {
					if got := marks[i].Load(); got != 1 {
						errs <- fmt.Sprintf("caller %d call %d: shard %d ran %d times", c, call, i, got)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestConcurrentCallerPanicIsolated: a panicking shard function in one
// caller re-raises at that caller's RunRanges and leaves concurrent
// callers' fan-outs untouched.
func TestConcurrentCallerPanicIsolated(t *testing.T) {
	p := New(4)
	defer p.Close()
	var wg sync.WaitGroup
	panicked := make(chan any, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() { panicked <- recover() }()
		p.RunRanges(Shards(5000), func(shard int, r Range) {
			if shard == 1 {
				panic("boom")
			}
		})
	}()
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for call := 0; call < 20; call++ {
				n := 4096
				var sum atomic.Int64
				p.RunRanges(Shards(n), func(shard int, r Range) {
					sum.Add(int64(r.Len()))
				})
				if int(sum.Load()) != n {
					t.Errorf("clean caller covered %d of %d alongside a panicking caller", sum.Load(), n)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := <-panicked; got != "boom" {
		t.Errorf("panicking caller recovered %v, want \"boom\"", got)
	}
}

// BenchmarkFanOut measures raw fan-out overhead plus a touch of work per
// element, across worker counts, on a fleet-sized slab.
func BenchmarkFanOut(b *testing.B) {
	const n = 100_000
	data := AlignedFloats(n)
	for i := range data {
		data[i] = float64(i%97) * 1.25
	}
	for _, w := range []int{1, 2, 4, 8} {
		if w > runtime.GOMAXPROCS(0) && w > 2 {
			// Still run: overhead under oversubscription is informative.
		}
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			p := New(w)
			defer p.Close()
			shards := Shards(n)
			partials := make([]float64, len(shards))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.RunRanges(shards, func(shard int, r Range) {
					s := 0.0
					for _, v := range data[r.Lo:r.Hi] {
						s += v * 1.000001
					}
					partials[shard] = s
				})
			}
		})
	}
}
