// Quickstart: build an elastic fleet, attach the coordinated
// macro-resource manager, run one simulated day of diurnal demand, and
// print the energy and service-quality outcome.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	// A deterministic simulation engine: same seed, same run.
	engine := sim.NewEngine(42)

	// 20 commodity servers: 300 W peak, 60 % of that when idle — the
	// paper's §4.3 figure — with a five-point DVFS ladder.
	srv := server.DefaultConfig()

	// Demand swings between 15 % and 60 % of fleet capacity over a day.
	demand := func(now time.Duration) float64 {
		h := math.Mod(now.Hours(), 24)
		frac := 0.15 + 0.45*0.5*(1+math.Cos(2*math.Pi*(h-14)/24))
		return frac * 20 * srv.Capacity
	}

	mgr, err := core.NewManager(engine, core.ManagerConfig{
		ServerConfig:   srv,
		FleetSize:      20,
		Queue:          workload.DefaultQueueModel(),
		SLA:            100 * time.Millisecond,
		DecisionPeriod: time.Minute,
		Mode:           core.ModeCoordinated,
		InitialOn:      10,
	}, demand)
	if err != nil {
		log.Fatal(err)
	}
	mgr.Start()

	const horizon = 24 * time.Hour
	if err := engine.Run(horizon); err != nil {
		log.Fatal(err)
	}
	res := mgr.Result(horizon)

	fmt.Println("elastic power management, one simulated day:")
	idleFloor := 20 * srv.PeakPower * srv.IdleFraction * 24 / 1000
	fmt.Printf("  energy:          %.1f kWh (an always-on fleet pays %.1f kWh in idle power alone)\n",
		res.EnergyKWh, idleFloor)
	fmt.Printf("  mean active:     %.1f of 20 servers\n", res.MeanActive)
	fmt.Printf("  SLA violations:  %.1f%% of decisions\n", res.SLAViolationRate*100)
	fmt.Printf("  power switches:  %d on / %d off\n", res.SwitchOns, res.SwitchOffs)
}
