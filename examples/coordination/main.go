// Coordination: reproduce the paper's §5.1 warning — an utilization-
// driven DVFS governor composed obliviously with a delay-triggered on/off
// policy chases its own tail (DVFS slows servers → delay rises → on/off
// wakes more machines → DVFS slows further), spending more energy than
// either policy alone. A single coordinated decision restores the
// savings.
//
//	go run ./examples/coordination
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/onoff"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	const fleet = 40
	srv := server.DefaultConfig()
	demand := func(now time.Duration) float64 {
		h := math.Mod(now.Hours(), 24)
		frac := 0.15 + 0.35*0.5*(1+math.Cos(2*math.Pi*(h-14)/24))
		return frac * fleet * srv.Capacity
	}

	runMode := func(mode core.PolicyMode, initialOn int) core.RunResult {
		e := sim.NewEngine(1)
		mgr, err := core.NewManager(e, core.ManagerConfig{
			ServerConfig:   srv,
			FleetSize:      fleet,
			Queue:          workload.DefaultQueueModel(),
			SLA:            100 * time.Millisecond,
			DecisionPeriod: time.Minute,
			Mode:           mode,
			DVFSTarget:     0.8,
			Trigger: onoff.DelayTrigger{
				High: 60 * time.Millisecond, Low: 25 * time.Millisecond,
				StepUp: 1, StepDown: 1, Min: 1, Max: fleet,
			},
			InitialOn: initialOn,
		}, demand)
		if err != nil {
			log.Fatal(err)
		}
		mgr.Start()
		const horizon = 3 * 24 * time.Hour
		if err := e.Run(horizon); err != nil {
			log.Fatal(err)
		}
		return mgr.Result(horizon)
	}

	fmt.Println("three days, same diurnal workload, five policy compositions:")
	fmt.Println("mode          energy_kWh  mean_active  switches")
	for _, mode := range []core.PolicyMode{
		core.ModeAlwaysOn, core.ModeOnOffOnly, core.ModeDVFSOnly,
		core.ModeOblivious, core.ModeCoordinated,
	} {
		initial := fleet / 4
		if mode == core.ModeDVFSOnly {
			initial = 25 // fixed fleet must be peak-sized
		}
		r := runMode(mode, initial)
		fmt.Printf("%-12s  %10.1f  %11.1f  %8d\n",
			mode, r.EnergyKWh, r.MeanActive, r.SwitchOns+r.SwitchOffs)
	}
	fmt.Println("\nthe oblivious composition keeps more machines on than either")
	fmt.Println("policy alone (paper §5.1); the coordinated joint decision is cheapest.")
}
