// Animoto: replay the surge the paper quotes from Armbrust et al. [5] —
// "growing from 50 servers to 3500 servers in three days … after the peak
// subsided, traffic fell to a level that was well below the peak" — and
// watch a forecast-driven provisioner ride it.
//
//	go run ./examples/animoto
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/control"
	"repro/internal/onoff"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	surge, err := trace.GenerateSurge(trace.DefaultSurgeConfig(), sim.NewRNG(3))
	if err != nil {
		log.Fatal(err)
	}

	holt, err := control.NewHolt(0.6, 0.3) // trend-following: sees the ramp coming
	if err != nil {
		log.Fatal(err)
	}
	prov, err := onoff.NewProvisioner(onoff.ProvisionerConfig{
		CapacityPerServer: 1, // demand is in server-equivalents
		TargetUtil:        0.9,
		Spares:            10,
		Min:               20,
		Max:               4000,
		DownscaleAfter:    6,
		LookaheadSteps:    2,
		Forecaster:        holt,
	})
	if err != nil {
		log.Fatal(err)
	}

	const step = 10 * time.Minute
	fleet := 50
	fmt.Println("day  demand  fleet  headroom")
	steps := int(surge.Duration() / step)
	var shortfalls int
	for i := 0; i < steps; i++ {
		t := time.Duration(i) * step
		demand := surge.At(t)
		if float64(fleet) < demand {
			shortfalls++
		}
		prov.Observe(demand)
		fleet = prov.Desired(fleet)
		// Print a daily snapshot.
		if t%(24*time.Hour) == 0 {
			fmt.Printf("%3.0f  %6.0f  %5d  %7.1f%%\n",
				t.Hours()/24, demand, fleet, 100*(float64(fleet)-demand)/demand)
		}
	}
	fmt.Printf("\nfleet peaked at the surge and shrank afterwards; "+
		"capacity shortfalls in %.2f%% of 10-minute periods\n",
		100*float64(shortfalls)/float64(steps))
}
