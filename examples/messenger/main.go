// Messenger: reproduce the paper's Figure-3 workload (a week of
// connection counts and login rates with diurnal swing, weekend dips, and
// flash crowds) and provision a connection-intensive service elastically
// over it, in the style of Chen et al. [18].
//
//	go run ./examples/messenger
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/onoff"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	// Synthesize the calibrated week: 1 M peak connections, 1400/s peak
	// logins, afternoon ≈ 2× midnight, weekdays above weekends.
	m, err := trace.GenerateMessenger(trace.DefaultMessengerConfig(), sim.NewRNG(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: peak %.2g connections, %.0f logins/s, %d flash crowds\n",
		m.Connections.Max(), m.Logins.Max(), len(m.FlashTimes))

	svc := workload.DefaultConnectionService()
	srv := server.DefaultConfig()

	// Static sizing rule: handle the worst case with 20 % headroom.
	staticN := svc.ServersNeeded(m.Connections.Max()*1.2, m.Logins.Max()*1.2)

	// Elastic provisioning: forecast connection-equivalents and keep
	// just enough servers awake, with hysteresis against flapping.
	prov, err := onoff.NewProvisioner(onoff.ProvisionerConfig{
		CapacityPerServer: svc.ConnsPerServer,
		TargetUtil:        0.75,
		Spares:            3,
		Min:               4,
		Max:               staticN,
		DownscaleAfter:    6,
		LookaheadSteps:    2,
	})
	if err != nil {
		log.Fatal(err)
	}

	const step = 5 * time.Minute
	idleW := srv.PeakPower * srv.IdleFraction
	dynW := srv.PeakPower - idleW
	fleet := staticN / 2
	var elasticJ, staticJ float64
	var short int
	steps := int(m.Connections.Duration() / step)
	for i := 0; i < steps; i++ {
		t := time.Duration(i) * step
		conns, logins := m.Connections.At(t), m.Logins.At(t)

		staticJ += (float64(staticN)*idleW + float64(staticN)*dynW*svc.Utilization(conns, logins, staticN)) * step.Seconds()
		elasticJ += (float64(fleet)*idleW + float64(fleet)*dynW*svc.Utilization(conns, logins, fleet)) * step.Seconds()
		if fleet < svc.ServersNeeded(conns, logins) {
			short++
		}

		loadEquiv := conns
		if le := logins / svc.LoginsPerServerSec * svc.ConnsPerServer; le > loadEquiv {
			loadEquiv = le
		}
		prov.Observe(loadEquiv)
		next := prov.Desired(fleet)
		if next > fleet {
			elasticJ += float64(next-fleet) * srv.BootEnergy
		}
		fleet = next
	}

	fmt.Printf("static fleet (%d servers):  %.0f kWh/week\n", staticN, staticJ/3.6e6)
	fmt.Printf("elastic provisioning:      %.0f kWh/week (%.0f%% saved)\n",
		elasticJ/3.6e6, (1-elasticJ/staticJ)*100)
	fmt.Printf("capacity shortfalls:       %.2f%% of 5-minute periods\n",
		100*float64(short)/float64(steps))
}
