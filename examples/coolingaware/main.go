// Coolingaware: reproduce the paper's §5.1 CRAC-sensitivity scenario.
// One CRAC regulates zone A tightly and zone B poorly. Migrating all load
// from A to B and shutting A down convinces the CRAC the room is cold; it
// relaxes the supply air while B overheats toward protective shutdown.
// A sensitivity-aware placement keeps the load where the cooling can see
// it.
//
//	go run ./examples/coolingaware
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cooling"
	"repro/internal/server"
	"repro/internal/sim"
)

const perZone = 100

func main() {
	fmt.Println("scenario: zone A sensitivity 0.85, zone B 0.35, one CRAC (paper §5.1)")
	naiveB, naiveTrips, supplyRise := run(true)
	awareMax, awareTrips, _ := run(false)

	fmt.Printf("\nnaive migration (all load A->B, A off):\n")
	fmt.Printf("  CRAC relaxed supply by %.1f degC after zone A cooled\n", supplyRise)
	fmt.Printf("  zone B inlet peaked at %.1f degC -> %d protective shutdowns\n", naiveB, naiveTrips)
	fmt.Printf("\nsensitivity-aware placement (load stays in zone A):\n")
	fmt.Printf("  hottest inlet %.1f degC, %d shutdowns\n", awareMax, awareTrips)
}

// run simulates 12 hours; when migrate is true the load moves to zone B
// at t=4h and zone A powers off.
func run(migrate bool) (maxInletB float64, trips int, supplyRise float64) {
	e := sim.NewEngine(11)
	room, err := cooling.TwoZoneRoom(0.85, 0.35)
	if err != nil {
		log.Fatal(err)
	}
	room.Attach(e)

	cfg := server.DefaultConfig()
	cfg.TripTempC = 33
	servers := make([]*server.Server, 0, 2*perZone)
	for i := 0; i < 2*perZone; i++ {
		c := cfg
		c.Name = fmt.Sprintf("srv-%03d", i)
		s, err := server.New(c)
		if err != nil {
			log.Fatal(err)
		}
		s.PowerOn(e)
		servers = append(servers, s)
	}
	if err := e.Run(2 * time.Minute); err != nil {
		log.Fatal(err)
	}
	for i, s := range servers {
		if i < perZone {
			s.SetUtilization(e.Now(), 0.9) // zone A busy
		} else {
			s.SetUtilization(e.Now(), 0.1) // zone B light
		}
	}

	supplyBefore := 0.0
	e.Every(room.PhysicsTick(), func(eng *sim.Engine) {
		now := eng.Now()
		var heatA, heatB float64
		for i, s := range servers {
			s.Sync(now)
			if i < perZone {
				heatA += s.Power()
			} else {
				heatB += s.Power()
			}
		}
		_ = room.SetZoneHeat(0, heatA)
		_ = room.SetZoneHeat(1, heatB)
		for i, s := range servers {
			zone := i / perZone
			if s.ObserveInlet(now, room.ZoneInletC(zone)) {
				trips++
			}
		}
		if b := room.ZoneInletC(1); b > maxInletB {
			maxInletB = b
		}
		if a := room.ZoneInletC(0); a > maxInletB && !migrate {
			maxInletB = a // for the aware case report the hottest zone
		}
	})
	e.ScheduleAt(4*time.Hour, func(eng *sim.Engine) {
		supplyBefore = room.CRACSetpointC(0)
		if !migrate {
			return
		}
		now := eng.Now()
		for i, s := range servers {
			if i < perZone {
				s.SetUtilization(now, 0)
				s.PowerOff(eng)
			} else {
				s.SetUtilization(now, 0.95)
			}
		}
	})
	if err := e.Run(12 * time.Hour); err != nil {
		log.Fatal(err)
	}
	return maxInletB, trips, room.CRACSetpointC(0) - supplyBefore
}
